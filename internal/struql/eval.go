package struql

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"strudel/internal/graph"
	"strudel/internal/obs"
)

// Options tunes evaluation; the zero value is the optimized default.
type Options struct {
	// NoReorder evaluates where conditions in first-ready textual order
	// instead of letting the planner order them by estimated cost — the
	// unoptimized baseline for experiments E6 and E14. "First-ready"
	// rather than strictly textual: a filter or negation whose variables
	// no earlier condition has bound yet waits for its binder, so the
	// declarative semantics (condition order never changes the result)
	// hold under this flag too.
	NoReorder bool
	// NoStats disables selectivity statistics: the planner falls back to
	// the fixed uniform-degree heuristics, and regular-path conditions
	// are never seeded from label indexes. This is the pre-cost-model
	// planner, kept as the before half of experiment E14.
	NoStats bool
	// NoFrozen disables the compact-snapshot fast path: even when the
	// source can supply a frozen graph (repo.Indexed), the evaluator
	// sticks to the Source interface's slice-returning accessors. Results
	// are identical either way — the flag exists as the escape hatch and
	// as the before half of the snapshot benchmarks.
	NoFrozen bool
	// Stats, when non-nil, supplies pre-collected selectivity statistics
	// (see CollectStats) instead of collecting them per evaluation — the
	// warm-statistics path. The Stats must describe the evaluated
	// source; stale statistics degrade plan quality but never
	// correctness, since access paths re-check the live source. Ignored
	// under NoStats.
	Stats *Stats
	// Parallelism is the worker count for the per-row operators: 0 uses
	// one worker per available CPU (the default), 1 forces the sequential
	// path, n>1 uses exactly n workers. Results are byte-identical at any
	// setting: rows are partitioned into contiguous chunks and chunk
	// outputs are concatenated in input order, so the binding relation —
	// and therefore the constructed graph — never depends on scheduling.
	Parallelism int
	// Metrics, when non-nil, receives per-operator row counts, cache
	// hit/miss counters, and worker-utilization counts. Nil (the
	// default) disables instrumentation at the cost of one branch per
	// operator application; results are identical either way.
	Metrics *obs.EvalMetrics
	// MaxRows, when positive, caps the binding-relation size: an
	// operator whose output exceeds it aborts evaluation with a
	// *ResourceExhausted error. It bounds the memory a cross product or
	// an unselective condition can consume.
	MaxRows int
	// MaxNFAStates, when positive, caps the product-automaton states a
	// path condition may visit per start node before aborting with a
	// *ResourceExhausted error. It bounds runaway regular-path closures
	// over large graphs.
	MaxNFAStates int
	// Deadline, when nonzero, is the wall-clock time after which
	// evaluation aborts with a *ResourceExhausted error. It is polled at
	// the same points as request-context cancellation (operator
	// boundaries and bounded row batches), so enforcement latency is a
	// few dozen row visits, not a whole operator.
	Deadline time.Time
}

// Result is the outcome of evaluating a query: the constructed graph (new
// nodes, edges, and output collections; edges may target atoms and nodes of
// the source graph) and evaluation statistics.
type Result struct {
	Graph *graph.Graph
	// Rows is the total number of binding rows produced by where stages.
	Rows int
	// Plan records, per block in evaluation order, the condition order the
	// planner chose, for explain-style inspection.
	Plan []string
}

// Bindings is the relation a where clause denotes: the set of assignments
// from query variables to oid and label values satisfying its conditions.
type Bindings struct {
	Vars []string
	Rows [][]graph.Value
}

// Index returns the column of a variable, or -1.
func (b *Bindings) Index(v string) int {
	for i, name := range b.Vars {
		if name == v {
			return i
		}
	}
	return -1
}

// Lookup returns the value of variable v in row r, or Null.
func (b *Bindings) Lookup(r int, v string) graph.Value {
	i := b.Index(v)
	if i < 0 {
		return graph.Null
	}
	return b.Rows[r][i]
}

// emptyBindings is the unit relation: no variables, one empty row.
func emptyBindings() *Bindings { return &Bindings{Rows: [][]graph.Value{{}}} }

// Eval evaluates a query against a source with a fresh Skolem environment.
func Eval(q *Query, src Source, opts *Options) (*Result, error) {
	return EvalWithEnv(q, src, NewSkolemEnv(), opts)
}

// EvalWithEnv evaluates a query with a caller-provided Skolem environment,
// the mechanism by which composed queries extend one site graph (§6.2).
func EvalWithEnv(q *Query, src Source, env *SkolemEnv, opts *Options) (*Result, error) {
	ctx := newEvalCtx(src, opts, env)
	for _, blk := range q.Blocks {
		if err := ctx.evalBlock(blk, emptyBindings()); err != nil {
			return nil, err
		}
	}
	return &Result{Graph: ctx.out, Rows: ctx.rows, Plan: ctx.plans}, nil
}

// EvalSeq evaluates a sequence of queries, each seeing the union of the
// base source and everything constructed so far, sharing one Skolem
// environment — the composition style of the suciu example (§5.1).
func EvalSeq(queries []*Query, base Source, opts *Options) (*graph.Graph, error) {
	env := NewSkolemEnv()
	acc := graph.New()
	for i, q := range queries {
		src := NewUnionSource(base, NewGraphSource(acc))
		r, err := EvalWithEnv(q, src, env, opts)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i+1, err)
		}
		acc.Merge(r.Graph)
	}
	return acc, nil
}

// EvalWhere evaluates a condition list seeded with existing bindings and
// returns the extended relation. The dynamic evaluator uses this to run
// the incremental query of one site-schema edge with the page's Skolem
// arguments pre-bound (§2.5).
func EvalWhere(conds []Cond, src Source, seed *Bindings, opts *Options) (*Bindings, error) {
	return EvalWhereCtx(context.Background(), conds, src, seed, opts)
}

// EvalWhereCtx is EvalWhere under a context: cancellation is observed at
// operator boundaries (between conditions) and, within one operator,
// between bounded row batches, so a cancelled caller — an abandoned or
// timed-out HTTP request — stops evaluation promptly instead of running
// the query to completion. The returned error wraps ctx.Err(), so
// errors.Is(err, context.Canceled/DeadlineExceeded) identifies it.
func EvalWhereCtx(reqCtx context.Context, conds []Cond, src Source, seed *Bindings, opts *Options) (*Bindings, error) {
	if seed == nil {
		seed = emptyBindings()
	}
	ctx := newEvalCtx(src, opts, NewSkolemEnv())
	if reqCtx != nil && reqCtx != context.Background() {
		ctx.reqCtx = reqCtx
	}
	return ctx.evalWhere(conds, seed)
}

// frozenSource is implemented by sources that can supply a compact
// read-optimized snapshot of their current state (repo.Indexed). The
// snapshot, when present, replaces the slice-returning Source accessors
// with zero-copy CSR iteration on the evaluator's hot paths.
type frozenSource interface{ Frozen() *graph.Frozen }

type evalCtx struct {
	src   Source
	opts  *Options
	env   *SkolemEnv
	out   *graph.Graph
	rows  int
	plans []string
	// frozen is the source's compact snapshot, nil when the source has
	// none or Options.NoFrozen is set. Both representations answer every
	// access identically; only the allocation profile differs.
	frozen *graph.Frozen
	// par is the resolved worker count for per-row operators.
	par int
	// avgDeg caches avgDegree(src) for the planner; the source does not
	// change during one evaluation.
	avgDeg float64
	// stats is the selectivity statistics the cost model consults; nil
	// under Options.NoStats (the heuristic baseline).
	stats *Stats
	// suppressPlans stops plan recording during not(...) sub-evaluations,
	// which run once per candidate row.
	suppressPlans bool
	// reqCtx, when non-nil, is polled at operator boundaries and between
	// row batches so long evaluations can be cancelled mid-query.
	reqCtx context.Context
	// Resource guards (zero = unlimited), from Options.
	maxRows  int
	maxNFA   int
	deadline time.Time

	cache *matcherCache
	// planCache shares condition-ordering plans across the not(...)
	// sub-evaluations of one evaluation, which otherwise recompute the
	// same greedy plan once per candidate row.
	planCache *planCache
	// metrics is the optional instrumentation sink (nil = disabled).
	metrics *obs.EvalMetrics
}

func newEvalCtx(src Source, opts *Options, env *SkolemEnv) *evalCtx {
	if opts == nil {
		opts = &Options{}
	}
	// Resolve the snapshot before statistics: collection then reads the
	// snapshot's precomputed per-label summaries.
	var frozen *graph.Frozen
	if !opts.NoFrozen {
		if fs, ok := src.(frozenSource); ok {
			frozen = fs.Frozen()
		}
	}
	var stats *Stats
	if !opts.NoStats {
		if opts.Stats != nil {
			stats = opts.Stats
		} else {
			stats = CollectStats(src)
			stats.metrics = opts.Metrics
			opts.Metrics.RecordStatsBuild()
		}
	}
	return &evalCtx{
		src:       src,
		opts:      opts,
		env:       env,
		out:       graph.New(),
		frozen:    frozen,
		par:       opts.parallelism(),
		avgDeg:    avgDegree(src),
		stats:     stats,
		maxRows:   opts.MaxRows,
		maxNFA:    opts.MaxNFAStates,
		deadline:  opts.Deadline,
		cache:     newMatcherCache(),
		planCache: newPlanCache(),
		metrics:   opts.Metrics,
	}
}

// forkSequential derives a context for a not(...) sub-evaluation running
// inside one worker: sequential (nested fan-out would oversubscribe the
// pool), plan recording off, matcher cache shared.
func (ctx *evalCtx) forkSequential() *evalCtx {
	return &evalCtx{
		src:           ctx.src,
		opts:          ctx.opts,
		env:           ctx.env,
		out:           ctx.out,
		frozen:        ctx.frozen,
		par:           1,
		avgDeg:        ctx.avgDeg,
		stats:         ctx.stats,
		suppressPlans: true,
		reqCtx:        ctx.reqCtx,
		maxRows:       ctx.maxRows,
		maxNFA:        ctx.maxNFA,
		deadline:      ctx.deadline,
		cache:         ctx.cache,
		planCache:     ctx.planCache,
		metrics:       ctx.metrics,
	}
}

// cancelled returns a wrapped context error once the request context is
// done, or a *ResourceExhausted once the evaluation deadline has
// passed; nil while neither guard applies or trips.
func (ctx *evalCtx) cancelled() error {
	if ctx.reqCtx != nil {
		if err := ctx.reqCtx.Err(); err != nil {
			return fmt.Errorf("struql: evaluation cancelled: %w", err)
		}
	}
	if !ctx.deadline.IsZero() && time.Now().After(ctx.deadline) {
		ctx.metrics.RecordGuard(obs.GuardDeadline)
		return &ResourceExhausted{Limit: LimitDeadline}
	}
	return nil
}

// polled reports whether cancelled() can ever return non-nil, i.e.
// whether rowMap must batch rows between polls.
func (ctx *evalCtx) polled() bool {
	return ctx.reqCtx != nil || !ctx.deadline.IsZero()
}

func (ctx *evalCtx) matcher(p *PathExpr) *pathMatcher {
	return ctx.cache.get(p, ctx.src, ctx.frozen, ctx.maxNFA, ctx.metrics)
}

func (ctx *evalCtx) evalBlock(blk *Block, parent *Bindings) error {
	b, err := ctx.evalWhere(blk.Where, parent)
	if err != nil {
		return err
	}
	if len(blk.Aggregate) > 0 {
		b, err = aggregate(blk, b)
		if err != nil {
			return err
		}
	}
	ctx.rows += len(b.Rows)
	if err := ctx.construct(blk, b); err != nil {
		return err
	}
	for _, nb := range blk.Nested {
		if err := ctx.evalBlock(nb, b); err != nil {
			return err
		}
	}
	return nil
}

// evalWhere extends the parent relation by the conditions' constraints.
func (ctx *evalCtx) evalWhere(conds []Cond, parent *Bindings) (*Bindings, error) {
	// Output variable set: parent vars plus variables bound here.
	newVars := map[string]bool{}
	for _, c := range conds {
		c.boundVars(newVars)
	}
	vars := append([]string(nil), parent.Vars...)
	have := map[string]bool{}
	for _, v := range vars {
		have[v] = true
	}
	extras := make([]string, 0, len(newVars))
	for v := range newVars {
		if !have[v] {
			extras = append(extras, v)
		}
	}
	sort.Strings(extras)
	vars = append(vars, extras...)

	b := &Bindings{Vars: vars}
	for _, prow := range parent.Rows {
		row := make([]graph.Value, len(vars))
		copy(row, prow)
		b.Rows = append(b.Rows, row)
	}
	if len(conds) == 0 {
		return b, nil
	}

	ctx.metrics.RecordWhere()
	plan, err := ctx.orderConds(conds, parent.Vars)
	if err != nil {
		return nil, err
	}
	if !ctx.suppressPlans {
		ctx.plans = append(ctx.plans, plan.String())
	}
	ctx.metrics.RecordReorder(plan.Reordered())
	for _, step := range plan.Steps {
		if err := ctx.cancelled(); err != nil {
			return nil, err
		}
		ctx.recordAccess(step.Access)
		rowsIn := len(b.Rows)
		b, err = ctx.applyCond(conds[step.Index], step, b)
		if err != nil {
			return nil, err
		}
		if ctx.metrics != nil {
			ctx.metrics.RecordOp(opKind(conds[step.Index]), rowsIn, len(b.Rows))
		}
		if ctx.maxRows > 0 && len(b.Rows) > ctx.maxRows {
			ctx.metrics.RecordGuard(obs.GuardRows)
			return nil, &ResourceExhausted{Limit: LimitRows, Used: len(b.Rows), Max: ctx.maxRows}
		}
		if len(b.Rows) == 0 {
			break
		}
	}
	ctx.dedupRows(b)
	return b, nil
}

// opKind maps a condition to its obs operator index.
func opKind(c Cond) int {
	switch c.(type) {
	case *MemberCond:
		return obs.OpMember
	case *PredCond:
		return obs.OpPred
	case *CmpCond:
		return obs.OpCmp
	case *NotCond:
		return obs.OpNot
	case *EdgeCond:
		return obs.OpEdge
	case *PathCond:
		return obs.OpPath
	}
	return -1
}

// planKey identifies one condition-ordering problem: the conds slice
// (by first-condition identity plus length — every Cond instance
// belongs to exactly one condition list, so this pins the slice) and
// the set of already-bound input variables. Everything else the greedy
// planner consults (source sizes, statistics, avg degree) is fixed for
// the life of one evaluation, so equal keys always produce equal plans.
type planKey struct {
	cond0 Cond
	n     int
	bound string
}

// planCache memoizes condition-ordering plans. Its payoff is not(...)
// sub-evaluations, which re-plan the same condition list once per
// candidate row; with the cache the greedy planner (and its per-step
// description strings) runs once per distinct bound-variable shape.
type planCache struct {
	mu sync.Mutex
	m  map[planKey]*Plan
}

func newPlanCache() *planCache { return &planCache{m: map[planKey]*Plan{}} }

// orderConds returns the evaluation plan of a condition list: per
// condition, its scheduled position and access path. With NoReorder the
// schedule is first-ready textual order; otherwise the greedy planner
// picks, at each step, the ready condition with the lowest estimated
// cost given the bound variables. Plans are cached per (condition list,
// bound-variable set); cached plans are exactly what the planner would
// recompute, so caching never changes evaluation order.
func (ctx *evalCtx) orderConds(conds []Cond, inputVars []string) (*Plan, error) {
	if len(conds) == 0 {
		return &Plan{}, nil
	}
	key := planKey{cond0: conds[0], n: len(conds), bound: strings.Join(inputVars, "\x00")}
	ctx.planCache.mu.Lock()
	if p, ok := ctx.planCache.m[key]; ok {
		ctx.planCache.mu.Unlock()
		ctx.metrics.RecordPlan(true)
		return p, nil
	}
	ctx.planCache.mu.Unlock()
	ctx.metrics.RecordPlan(false)
	plan, err := ctx.planConds(conds, inputVars)
	if err != nil {
		return nil, err
	}
	ctx.planCache.mu.Lock()
	ctx.planCache.m[key] = plan
	ctx.planCache.mu.Unlock()
	return plan, nil
}

func avgDegree(src Source) float64 {
	n := src.NumNodes()
	if n == 0 {
		return 1
	}
	return float64(src.NumEdges())/float64(n) + 1
}

// applyCond extends or filters the relation by one condition, honoring
// the access hints the planner attached to its step.
func (ctx *evalCtx) applyCond(c Cond, step PlanStep, b *Bindings) (*Bindings, error) {
	switch c := c.(type) {
	case *MemberCond:
		return ctx.applyMember(c, b)
	case *PredCond:
		return ctx.applyPred(c, b)
	case *CmpCond:
		return ctx.applyCmp(c, b)
	case *NotCond:
		return ctx.applyNot(c, b)
	case *EdgeCond:
		return ctx.applyEdge(c, b)
	case *PathCond:
		return ctx.applyPath(c, step, b)
	}
	return nil, fmt.Errorf("struql: unknown condition type %T", c)
}

// resolveTerm returns the term's value under the row, and whether it is
// known (constants always are; variables when non-null).
func resolveTerm(t Term, b *Bindings, row []graph.Value) (graph.Value, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	i := b.Index(t.Var)
	if i < 0 {
		return graph.Null, false
	}
	v := row[i]
	return v, !v.IsNull()
}

// resolveAt is resolveTerm with the variable's column precomputed.
func resolveAt(t Term, idx int, row []graph.Value) (graph.Value, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	if idx < 0 {
		return graph.Null, false
	}
	v := row[idx]
	return v, !v.IsNull()
}

func (ctx *evalCtx) applyMember(c *MemberCond, b *Bindings) (*Bindings, error) {
	vi := b.Index(c.Var)
	f := ctx.frozen
	// The extent is row-invariant: fetch it once, lazily (rows with a
	// bound variable probe membership and never need it), shared across
	// worker goroutines.
	var membersOnce sync.Once
	var members []graph.OID
	extent := func() []graph.OID {
		membersOnce.Do(func() {
			if f != nil {
				members = f.Collection(c.Coll)
			} else {
				members = ctx.src.Collection(c.Coll)
			}
		})
		return members
	}
	rows, err := ctx.rowMap(b.Rows, func(_ int, chunk [][]graph.Value) ([][]graph.Value, error) {
		var fr rowFrame
		out := make([][]graph.Value, 0, len(chunk))
		for _, row := range chunk {
			v := row[vi]
			if !v.IsNull() {
				if v.IsNode() {
					if f != nil {
						if f.InCollection(c.Coll, v.OID()) {
							out = append(out, row)
						}
					} else if ctx.src.InCollection(c.Coll, v.OID()) {
						out = append(out, row)
					}
				}
				continue
			}
			for _, m := range extent() {
				nr := fr.clone(row)
				nr[vi] = graph.NewNode(m)
				out = append(out, nr)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bindings{Vars: b.Vars, Rows: rows}, nil
}

func (ctx *evalCtx) applyPred(c *PredCond, b *Bindings) (*Bindings, error) {
	pred := builtinPreds[c.Name]
	ai := termIndex(c.Arg, b)
	rows, err := ctx.rowMap(b.Rows, func(_ int, chunk [][]graph.Value) ([][]graph.Value, error) {
		out := make([][]graph.Value, 0, len(chunk))
		for _, row := range chunk {
			v, known := resolveAt(c.Arg, ai, row)
			if known && pred(v) {
				out = append(out, row)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bindings{Vars: b.Vars, Rows: rows}, nil
}

func (ctx *evalCtx) applyCmp(c *CmpCond, b *Bindings) (*Bindings, error) {
	li, ri := termIndex(c.L, b), termIndex(c.R, b)
	rows, err := ctx.rowMap(b.Rows, func(_ int, chunk [][]graph.Value) ([][]graph.Value, error) {
		out := make([][]graph.Value, 0, len(chunk))
		for _, row := range chunk {
			l, lk := resolveAt(c.L, li, row)
			r, rk := resolveAt(c.R, ri, row)
			if !lk || !rk {
				continue
			}
			if cmpHolds(c.Op, l, r) {
				out = append(out, row)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bindings{Vars: b.Vars, Rows: rows}, nil
}

func cmpHolds(op CmpOp, l, r graph.Value) bool {
	switch op {
	case CmpEq:
		return graph.Equiv(l, r)
	case CmpNeq:
		return !graph.Equiv(l, r)
	}
	c := graph.Compare(l, r)
	switch op {
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	}
	return false
}

// applyNot keeps rows for which the negated conjunction has no solution,
// seeding the sub-evaluation with the row's current bindings. Each worker
// runs its chunk's sub-evaluations in a sequential forked context.
func (ctx *evalCtx) applyNot(c *NotCond, b *Bindings) (*Bindings, error) {
	rows, err := ctx.rowMap(b.Rows, func(_ int, chunk [][]graph.Value) ([][]graph.Value, error) {
		sub := ctx.forkSequential()
		out := make([][]graph.Value, 0, len(chunk))
		for _, row := range chunk {
			seed := &Bindings{}
			for i, v := range b.Vars {
				if !row[i].IsNull() {
					seed.Vars = append(seed.Vars, v)
				}
			}
			srow := make([]graph.Value, 0, len(seed.Vars))
			for i := range b.Vars {
				if !row[i].IsNull() {
					srow = append(srow, row[i])
				}
			}
			seed.Rows = [][]graph.Value{srow}
			sb, err := sub.evalWhere(c.Conds, seed)
			if err != nil {
				return nil, err
			}
			if len(sb.Rows) == 0 {
				out = append(out, row)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bindings{Vars: b.Vars, Rows: rows}, nil
}

// bindIfConsistent writes v into row at position i when i >= 0; it reports
// false if the position already holds a different value.
func bindIfConsistent(row []graph.Value, i int, v graph.Value) bool {
	if i < 0 {
		return true
	}
	if row[i].IsNull() {
		row[i] = v
		return true
	}
	return row[i] == v
}

// applyEdge evaluates x -> l -> y with an arc variable, choosing the
// access path from what is already bound. With a snapshot, every access
// path iterates the CSR in place instead of materializing edge slices.
func (ctx *evalCtx) applyEdge(c *EdgeCond, b *Bindings) (*Bindings, error) {
	fi, ti := termIndex(c.From, b), termIndex(c.To, b)
	li := b.Index(c.LabelVar)
	f := ctx.frozen
	rows, err := ctx.rowMap(b.Rows, func(_ int, chunk [][]graph.Value) ([][]graph.Value, error) {
		var fr rowFrame
		out := make([][]graph.Value, 0, len(chunk))
		for _, row := range chunk {
			from, fromKnown := resolveAt(c.From, fi, row)
			to, toKnown := resolveAt(c.To, ti, row)
			label := graph.Null
			labelKnown := false
			if li >= 0 && !row[li].IsNull() {
				label, labelKnown = row[li], true
			}
			emit := func(efrom graph.OID, elabel string, eto graph.Value) {
				nr := fr.clone(row)
				if !bindIfConsistent(nr, fi, graph.NewNode(efrom)) ||
					!bindIfConsistent(nr, li, graph.NewString(elabel)) ||
					!bindIfConsistent(nr, ti, eto) {
					fr.free(nr)
					return
				}
				out = append(out, nr)
			}
			switch {
			case fromKnown:
				if !from.IsNode() {
					continue
				}
				if labelKnown {
					lt := label.Text()
					if f != nil {
						f.ForEachOutLabel(from.OID(), lt, func(v graph.Value) bool {
							emit(from.OID(), lt, v)
							return true
						})
					} else {
						for _, v := range ctx.src.OutLabel(from.OID(), lt) {
							emit(from.OID(), lt, v)
						}
					}
				} else if f != nil {
					f.ForEachOut(from.OID(), func(elabel string, v graph.Value) bool {
						emit(from.OID(), elabel, v)
						return true
					})
				} else {
					for _, e := range ctx.src.Out(from.OID()) {
						emit(e.From, e.Label, e.To)
					}
				}
			case toKnown:
				lt := ""
				if labelKnown {
					lt = label.Text()
				}
				if f != nil {
					f.ForEachIn(to, func(efrom graph.OID, elabel string) bool {
						if !labelKnown || elabel == lt {
							emit(efrom, elabel, to)
						}
						return true
					})
				} else {
					for _, e := range ctx.src.In(to) {
						if labelKnown && e.Label != lt {
							continue
						}
						emit(e.From, e.Label, e.To)
					}
				}
			case labelKnown:
				lt := label.Text()
				if f != nil {
					f.ForEachLabeled(lt, func(efrom graph.OID, v graph.Value) bool {
						emit(efrom, lt, v)
						return true
					})
				} else {
					for _, e := range ctx.src.EdgesLabeled(lt) {
						emit(e.From, e.Label, e.To)
					}
				}
			default:
				if f != nil {
					for i, nn := 0, f.NumNodes(); i < nn; i++ {
						n := f.NodeAt(i)
						f.ForEachOut(n, func(elabel string, v graph.Value) bool {
							emit(n, elabel, v)
							return true
						})
					}
				} else {
					for _, n := range ctx.src.Nodes() {
						for _, e := range ctx.src.Out(n) {
							emit(e.From, e.Label, e.To)
						}
					}
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bindings{Vars: b.Vars, Rows: rows}, nil
}

// applyPath evaluates x -> R -> y. Single-literal paths use edge access
// paths; general expressions run the product-automaton BFS, its start
// set seeded from the planner's label hint when the path must begin
// with known concrete labels, from a full node scan otherwise.
func (ctx *evalCtx) applyPath(c *PathCond, step PlanStep, b *Bindings) (*Bindings, error) {
	if label, ok := singleLabel(c.Path); ok {
		return ctx.applySingleLabel(c, label, step, b)
	}
	fi, ti := termIndex(c.From, b), termIndex(c.To, b)
	m := ctx.matcher(c.Path)
	// allStarts computes, once, the start set for rows whose from
	// variable is unbound: the distinct sources of the seed labels'
	// extents, or every node. Lazy — rows with a bound start never pay
	// for it — and shared across worker goroutines.
	var startsOnce sync.Once
	var seededStarts []graph.Value
	allStarts := func() []graph.Value {
		startsOnce.Do(func() {
			if len(step.SeedLabels) > 0 {
				if ctx.frozen != nil {
					seededStarts = seedStartsFrozen(ctx.frozen, step.SeedLabels)
				} else {
					seededStarts = seedStarts(ctx.src, step.SeedLabels)
				}
				return
			}
			if ctx.frozen != nil {
				for i, nn := 0, ctx.frozen.NumNodes(); i < nn; i++ {
					seededStarts = append(seededStarts, graph.NewNode(ctx.frozen.NodeAt(i)))
				}
				return
			}
			for _, n := range ctx.src.Nodes() {
				seededStarts = append(seededStarts, graph.NewNode(n))
			}
		})
		return seededStarts
	}
	rows, err := ctx.rowMap(b.Rows, func(_ int, chunk [][]graph.Value) ([][]graph.Value, error) {
		var fr rowFrame
		out := make([][]graph.Value, 0, len(chunk))
		for _, row := range chunk {
			from, fromKnown := resolveAt(c.From, fi, row)
			to, toKnown := resolveAt(c.To, ti, row)
			starts := []graph.Value{from}
			if !fromKnown {
				starts = allStarts()
			}
			for _, s := range starts {
				if !s.IsNode() {
					continue // paths start at nodes (active-domain semantics)
				}
				if toKnown {
					hit, err := m.matches(s.OID(), to)
					if err != nil {
						ctx.metrics.RecordGuard(obs.GuardNFAStates)
						return nil, err
					}
					if hit {
						nr := fr.clone(row)
						if bindIfConsistent(nr, fi, s) {
							out = append(out, nr)
						} else {
							fr.free(nr)
						}
					}
					continue
				}
				vs, err := m.reachable(s.OID())
				if err != nil {
					ctx.metrics.RecordGuard(obs.GuardNFAStates)
					return nil, err
				}
				for _, v := range vs {
					nr := fr.clone(row)
					if bindIfConsistent(nr, fi, s) && bindIfConsistent(nr, ti, v) {
						out = append(out, nr)
					} else {
						fr.free(nr)
					}
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bindings{Vars: b.Vars, Rows: rows}, nil
}

func (ctx *evalCtx) applySingleLabel(c *PathCond, label string, step PlanStep, b *Bindings) (*Bindings, error) {
	fi, ti := termIndex(c.From, b), termIndex(c.To, b)
	f := ctx.frozen
	rows, err := ctx.rowMap(b.Rows, func(_ int, chunk [][]graph.Value) ([][]graph.Value, error) {
		var fr rowFrame
		out := make([][]graph.Value, 0, len(chunk))
		for _, row := range chunk {
			from, fromKnown := resolveAt(c.From, fi, row)
			to, toKnown := resolveAt(c.To, ti, row)
			emit := func(efrom graph.OID, eto graph.Value) {
				nr := fr.clone(row)
				if bindIfConsistent(nr, fi, graph.NewNode(efrom)) && bindIfConsistent(nr, ti, eto) {
					out = append(out, nr)
				} else {
					fr.free(nr)
				}
			}
			switch {
			case fromKnown && toKnown && step.PreferIn:
				// Both endpoints bound and the label's fan-in is the
				// smaller: verify through the in-edge index.
				if !from.IsNode() {
					continue
				}
				if f != nil {
					f.ForEachInLabel(to, label, func(efrom graph.OID) bool {
						if efrom == from.OID() {
							emit(efrom, to)
						}
						return true
					})
				} else {
					for _, e := range ctx.src.In(to) {
						if e.Label == label && e.From == from.OID() {
							emit(e.From, e.To)
						}
					}
				}
			case fromKnown:
				if !from.IsNode() {
					continue
				}
				if f != nil {
					f.ForEachOutLabel(from.OID(), label, func(v graph.Value) bool {
						if !toKnown || v == to {
							emit(from.OID(), v)
						}
						return true
					})
				} else {
					for _, v := range ctx.src.OutLabel(from.OID(), label) {
						if toKnown && v != to {
							continue
						}
						emit(from.OID(), v)
					}
				}
			case toKnown:
				if f != nil {
					f.ForEachInLabel(to, label, func(efrom graph.OID) bool {
						emit(efrom, to)
						return true
					})
				} else {
					for _, e := range ctx.src.In(to) {
						if e.Label == label {
							emit(e.From, e.To)
						}
					}
				}
			default:
				if f != nil {
					f.ForEachLabeled(label, func(efrom graph.OID, v graph.Value) bool {
						emit(efrom, v)
						return true
					})
				} else {
					for _, e := range ctx.src.EdgesLabeled(label) {
						emit(e.From, e.To)
					}
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bindings{Vars: b.Vars, Rows: rows}, nil
}

func termIndex(t Term, b *Bindings) int {
	if !t.IsVar() {
		return -1
	}
	return b.Index(t.Var)
}

// cloneRow copies a row; the naive oracle evaluator uses it (the
// optimized operators clone through a rowFrame instead).
func cloneRow(row []graph.Value) []graph.Value {
	nr := make([]graph.Value, len(row))
	copy(nr, row)
	return nr
}

// rowFrame bump-allocates cloned binding rows out of large shared slabs,
// replacing one make+copy per emitted row with an amortized append. Each
// worker chunk owns its frame, so frames need no synchronization; rows
// escape into the binding relation as capped subslices of the slabs.
type rowFrame struct{ slab []graph.Value }

// Slab sizes in values: frames start small — most operator chunks emit
// a handful of rows, and an oversized first slab would dominate the
// operator's footprint — and double per refill up to the cap, where
// heavy chunks amortize one allocation over thousands of rows.
const (
	rowFrameSlabMin = 256
	rowFrameSlabMax = 16 * 1024
)

func (fr *rowFrame) clone(row []graph.Value) []graph.Value {
	n := len(row)
	if cap(fr.slab)-len(fr.slab) < n {
		sz := 2 * cap(fr.slab)
		if sz < rowFrameSlabMin {
			sz = rowFrameSlabMin
		}
		if sz > rowFrameSlabMax {
			sz = rowFrameSlabMax
		}
		if n > sz {
			sz = n
		}
		fr.slab = make([]graph.Value, 0, sz)
	}
	lo := len(fr.slab)
	fr.slab = append(fr.slab, row...)
	return fr.slab[lo : lo+n : lo+n]
}

// free returns a row to the frame if it was the most recent clone — the
// emit helpers call it when a row fails a consistency bind, so rejected
// rows do not consume slab space.
func (fr *rowFrame) free(row []graph.Value) {
	n := len(row)
	if n > 0 && len(fr.slab) >= n && &fr.slab[len(fr.slab)-n] == &row[0] {
		fr.slab = fr.slab[:len(fr.slab)-n]
	}
}

func (ctx *evalCtx) dedupRows(b *Bindings) {
	if len(b.Rows) < 2 {
		return
	}
	// One byte arena holds every row's concatenated sort key (value keys
	// separated by NUL, the same total order as before), appended with
	// AppendKey — no per-row or per-value string allocation. Rows sort
	// and dedup through an index permutation over arena subslices.
	arena := make([]byte, 0, len(b.Rows)*24)
	offs := make([]int, len(b.Rows)+1)
	for i, row := range b.Rows {
		for _, v := range row {
			arena = graph.AppendKey(arena, v)
			arena = append(arena, 0)
		}
		offs[i+1] = len(arena)
	}
	key := func(i int) []byte { return arena[offs[i]:offs[i+1]] }
	idx := make([]int, len(b.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return bytes.Compare(key(idx[i]), key(idx[j])) < 0 })
	out := make([][]graph.Value, 0, len(b.Rows))
	for i, id := range idx {
		if i == 0 || !bytes.Equal(key(idx[i-1]), key(id)) {
			out = append(out, b.Rows[id])
		}
	}
	b.Rows = out
}

// aggregate groups the binding relation by the AggBy variables and folds
// each group through the aggregate expressions (§6.2's "grouping and
// aggregation" extension). The result binds only the grouping variables
// and the aggregate results, one row per group.
func aggregate(blk *Block, b *Bindings) (*Bindings, error) {
	byIdx := make([]int, len(blk.AggBy))
	for i, v := range blk.AggBy {
		byIdx[i] = b.Index(v)
		if byIdx[i] < 0 {
			return nil, fmt.Errorf("struql: line %d: grouping variable %s unbound", blk.Line, v)
		}
	}
	argIdx := make([]int, len(blk.Aggregate))
	for i, a := range blk.Aggregate {
		argIdx[i] = b.Index(a.Arg)
		if argIdx[i] < 0 {
			return nil, fmt.Errorf("struql: line %d: aggregated variable %s unbound", a.Pos, a.Arg)
		}
	}
	type group struct {
		key  []graph.Value
		rows [][]graph.Value
	}
	groups := map[string]*group{}
	var order []string
	for _, row := range b.Rows {
		key := make([]graph.Value, len(byIdx))
		var kb strings.Builder
		for i, bi := range byIdx {
			key[i] = row[bi]
			kb.WriteString(row[bi].Key())
			kb.WriteByte(0)
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = &group{key: key}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, row)
	}
	sort.Strings(order)
	out := &Bindings{Vars: append([]string(nil), blk.AggBy...)}
	for _, a := range blk.Aggregate {
		out.Vars = append(out.Vars, a.As)
	}
	for _, k := range order {
		g := groups[k]
		row := append([]graph.Value(nil), g.key...)
		for i, a := range blk.Aggregate {
			row = append(row, foldAgg(a.Fn, argIdx[i], g.rows))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// foldAgg computes one aggregate over a group's distinct argument values.
// Count counts them; sum/avg fold their numeric readings (non-numeric
// values contribute 0); min/max use the dynamic-coercion order.
func foldAgg(fn AggFn, argIdx int, rows [][]graph.Value) graph.Value {
	distinct := map[string]graph.Value{}
	for _, row := range rows {
		v := row[argIdx]
		distinct[v.Key()] = v
	}
	if fn == AggCount {
		return graph.NewInt(int64(len(distinct)))
	}
	// Fold in sorted key order: float addition is not associative and
	// min/max tie-break on the first of Compare-equal values, so map
	// iteration order would otherwise leak into results.
	keys := make([]string, 0, len(distinct))
	for k := range distinct {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var best graph.Value
	sum := 0.0
	allInt := true
	first := true
	for _, k := range keys {
		v := distinct[k]
		switch fn {
		case AggSum, AggAvg:
			switch v.Kind() {
			case graph.KindInt:
				sum += float64(v.Int())
			case graph.KindFloat:
				sum += v.Float()
				allInt = false
			default:
				if f, ok := numericText(v); ok {
					sum += f
					allInt = false
				}
			}
		case AggMin:
			if first || graph.Compare(v, best) < 0 {
				best = v
			}
		case AggMax:
			if first || graph.Compare(v, best) > 0 {
				best = v
			}
		}
		first = false
	}
	switch fn {
	case AggSum:
		if allInt {
			return graph.NewInt(int64(sum))
		}
		return graph.NewFloat(sum)
	case AggAvg:
		if len(distinct) == 0 {
			return graph.NewFloat(0)
		}
		return graph.NewFloat(sum / float64(len(distinct)))
	}
	return best
}

func numericText(v graph.Value) (float64, bool) {
	var f float64
	_, err := fmt.Sscanf(v.Text(), "%g", &f)
	return f, err == nil
}

// construct runs the create, link, and collect clauses once per binding
// row (§2.2). Skolem terms in link and collect clauses implicitly create
// their nodes; edges are only ever added from Skolem-created nodes, so
// existing nodes are never extended.
func (ctx *evalCtx) construct(blk *Block, b *Bindings) error {
	if len(blk.Create) == 0 && len(blk.Link) == 0 && len(blk.Collect) == 0 {
		return nil
	}
	// Resolve every variable reference to its column once per block, not
	// once per row, and reuse one argument buffer across rows (the Skolem
	// environment copies nothing out of it). Unbound-variable errors stay
	// per-row: a column can exist and still hold Null.
	type skPlan struct {
		fn   string
		pos  int
		args []string
		idx  []int
	}
	mkSk := func(st SkolemTerm) skPlan {
		p := skPlan{fn: st.Fn, pos: st.Pos, args: st.Args, idx: make([]int, len(st.Args))}
		for i, a := range st.Args {
			p.idx[i] = b.Index(a)
		}
		return p
	}
	type linkTarget struct {
		sk   *skPlan
		term *Term
		idx  int
		pos  int
	}
	mkTarget := func(t LinkTerm, pos int) linkTarget {
		if t.Skolem != nil {
			sk := mkSk(*t.Skolem)
			return linkTarget{sk: &sk, pos: pos}
		}
		return linkTarget{term: t.Term, idx: termIndex(*t.Term, b), pos: pos}
	}
	creates := make([]skPlan, len(blk.Create))
	for i, st := range blk.Create {
		creates[i] = mkSk(st)
	}
	type linkPlan struct {
		from       skPlan
		labelIsVar bool
		labelLit   string
		labelVar   string
		labelIdx   int
		to         linkTarget
		pos        int
	}
	links := make([]linkPlan, len(blk.Link))
	for i, le := range blk.Link {
		lp := linkPlan{from: mkSk(le.From), labelLit: le.Label.Lit, pos: le.Pos,
			to: mkTarget(le.To, le.Pos)}
		if le.Label.IsVar {
			lp.labelIsVar = true
			lp.labelVar = le.Label.Var
			lp.labelIdx = b.Index(le.Label.Var)
		}
		links[i] = lp
	}
	type collectPlan struct {
		coll   string
		target linkTarget
		pos    int
	}
	collects := make([]collectPlan, len(blk.Collect))
	for i, ce := range blk.Collect {
		collects[i] = collectPlan{coll: ce.Coll, target: mkTarget(ce.Target, ce.Pos), pos: ce.Pos}
	}

	argBuf := make([]graph.Value, 0, 8)
	skolemOID := func(p *skPlan, row []graph.Value) (graph.OID, error) {
		argBuf = argBuf[:0]
		for i, vi := range p.idx {
			if vi < 0 || row[vi].IsNull() {
				return "", fmt.Errorf("struql: line %d: Skolem argument %s unbound at construction", p.pos, p.args[i])
			}
			argBuf = append(argBuf, row[vi])
		}
		return ctx.env.OID(p.fn, argBuf), nil
	}
	resolveTarget := func(t *linkTarget, row []graph.Value) (graph.Value, error) {
		if t.sk != nil {
			oid, err := skolemOID(t.sk, row)
			if err != nil {
				return graph.Null, err
			}
			ctx.out.AddNode(oid)
			return graph.NewNode(oid), nil
		}
		v, known := resolveAt(*t.term, t.idx, row)
		if !known {
			return graph.Null, fmt.Errorf("struql: line %d: variable %s unbound at construction", t.pos, t.term.Var)
		}
		return v, nil
	}
	for _, row := range b.Rows {
		for i := range creates {
			oid, err := skolemOID(&creates[i], row)
			if err != nil {
				return err
			}
			ctx.out.AddNode(oid)
		}
		for i := range links {
			lp := &links[i]
			fromOID, err := skolemOID(&lp.from, row)
			if err != nil {
				return err
			}
			ctx.out.AddNode(fromOID)
			label := lp.labelLit
			if lp.labelIsVar {
				if lp.labelIdx < 0 || row[lp.labelIdx].IsNull() {
					return fmt.Errorf("struql: line %d: arc variable %s unbound at construction", lp.pos, lp.labelVar)
				}
				label = row[lp.labelIdx].Text()
			}
			to, err := resolveTarget(&lp.to, row)
			if err != nil {
				return err
			}
			ctx.out.AddEdge(fromOID, label, to)
		}
		for i := range collects {
			cp := &collects[i]
			v, err := resolveTarget(&cp.target, row)
			if err != nil {
				return err
			}
			if !v.IsNode() {
				return fmt.Errorf("struql: line %d: collect %s: collections contain objects, not the atom %s",
					cp.pos, cp.coll, v)
			}
			ctx.out.AddToCollection(cp.coll, v.OID())
		}
	}
	return nil
}
