package struql

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"strudel/internal/graph"
	"strudel/internal/obs"
)

// Options tunes evaluation; the zero value is the optimized default.
type Options struct {
	// NoReorder evaluates where conditions in first-ready textual order
	// instead of letting the planner order them by estimated cost — the
	// unoptimized baseline for experiments E6 and E14. "First-ready"
	// rather than strictly textual: a filter or negation whose variables
	// no earlier condition has bound yet waits for its binder, so the
	// declarative semantics (condition order never changes the result)
	// hold under this flag too.
	NoReorder bool
	// NoStats disables selectivity statistics: the planner falls back to
	// the fixed uniform-degree heuristics, and regular-path conditions
	// are never seeded from label indexes. This is the pre-cost-model
	// planner, kept as the before half of experiment E14.
	NoStats bool
	// Stats, when non-nil, supplies pre-collected selectivity statistics
	// (see CollectStats) instead of collecting them per evaluation — the
	// warm-statistics path. The Stats must describe the evaluated
	// source; stale statistics degrade plan quality but never
	// correctness, since access paths re-check the live source. Ignored
	// under NoStats.
	Stats *Stats
	// Parallelism is the worker count for the per-row operators: 0 uses
	// one worker per available CPU (the default), 1 forces the sequential
	// path, n>1 uses exactly n workers. Results are byte-identical at any
	// setting: rows are partitioned into contiguous chunks and chunk
	// outputs are concatenated in input order, so the binding relation —
	// and therefore the constructed graph — never depends on scheduling.
	Parallelism int
	// Metrics, when non-nil, receives per-operator row counts, cache
	// hit/miss counters, and worker-utilization counts. Nil (the
	// default) disables instrumentation at the cost of one branch per
	// operator application; results are identical either way.
	Metrics *obs.EvalMetrics
	// MaxRows, when positive, caps the binding-relation size: an
	// operator whose output exceeds it aborts evaluation with a
	// *ResourceExhausted error. It bounds the memory a cross product or
	// an unselective condition can consume.
	MaxRows int
	// MaxNFAStates, when positive, caps the product-automaton states a
	// path condition may visit per start node before aborting with a
	// *ResourceExhausted error. It bounds runaway regular-path closures
	// over large graphs.
	MaxNFAStates int
	// Deadline, when nonzero, is the wall-clock time after which
	// evaluation aborts with a *ResourceExhausted error. It is polled at
	// the same points as request-context cancellation (operator
	// boundaries and bounded row batches), so enforcement latency is a
	// few dozen row visits, not a whole operator.
	Deadline time.Time
}

// Result is the outcome of evaluating a query: the constructed graph (new
// nodes, edges, and output collections; edges may target atoms and nodes of
// the source graph) and evaluation statistics.
type Result struct {
	Graph *graph.Graph
	// Rows is the total number of binding rows produced by where stages.
	Rows int
	// Plan records, per block in evaluation order, the condition order the
	// planner chose, for explain-style inspection.
	Plan []string
}

// Bindings is the relation a where clause denotes: the set of assignments
// from query variables to oid and label values satisfying its conditions.
type Bindings struct {
	Vars []string
	Rows [][]graph.Value
}

// Index returns the column of a variable, or -1.
func (b *Bindings) Index(v string) int {
	for i, name := range b.Vars {
		if name == v {
			return i
		}
	}
	return -1
}

// Lookup returns the value of variable v in row r, or Null.
func (b *Bindings) Lookup(r int, v string) graph.Value {
	i := b.Index(v)
	if i < 0 {
		return graph.Null
	}
	return b.Rows[r][i]
}

// emptyBindings is the unit relation: no variables, one empty row.
func emptyBindings() *Bindings { return &Bindings{Rows: [][]graph.Value{{}}} }

// Eval evaluates a query against a source with a fresh Skolem environment.
func Eval(q *Query, src Source, opts *Options) (*Result, error) {
	return EvalWithEnv(q, src, NewSkolemEnv(), opts)
}

// EvalWithEnv evaluates a query with a caller-provided Skolem environment,
// the mechanism by which composed queries extend one site graph (§6.2).
func EvalWithEnv(q *Query, src Source, env *SkolemEnv, opts *Options) (*Result, error) {
	ctx := newEvalCtx(src, opts, env)
	for _, blk := range q.Blocks {
		if err := ctx.evalBlock(blk, emptyBindings()); err != nil {
			return nil, err
		}
	}
	return &Result{Graph: ctx.out, Rows: ctx.rows, Plan: ctx.plans}, nil
}

// EvalSeq evaluates a sequence of queries, each seeing the union of the
// base source and everything constructed so far, sharing one Skolem
// environment — the composition style of the suciu example (§5.1).
func EvalSeq(queries []*Query, base Source, opts *Options) (*graph.Graph, error) {
	env := NewSkolemEnv()
	acc := graph.New()
	for i, q := range queries {
		src := NewUnionSource(base, NewGraphSource(acc))
		r, err := EvalWithEnv(q, src, env, opts)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i+1, err)
		}
		acc.Merge(r.Graph)
	}
	return acc, nil
}

// EvalWhere evaluates a condition list seeded with existing bindings and
// returns the extended relation. The dynamic evaluator uses this to run
// the incremental query of one site-schema edge with the page's Skolem
// arguments pre-bound (§2.5).
func EvalWhere(conds []Cond, src Source, seed *Bindings, opts *Options) (*Bindings, error) {
	return EvalWhereCtx(context.Background(), conds, src, seed, opts)
}

// EvalWhereCtx is EvalWhere under a context: cancellation is observed at
// operator boundaries (between conditions) and, within one operator,
// between bounded row batches, so a cancelled caller — an abandoned or
// timed-out HTTP request — stops evaluation promptly instead of running
// the query to completion. The returned error wraps ctx.Err(), so
// errors.Is(err, context.Canceled/DeadlineExceeded) identifies it.
func EvalWhereCtx(reqCtx context.Context, conds []Cond, src Source, seed *Bindings, opts *Options) (*Bindings, error) {
	if seed == nil {
		seed = emptyBindings()
	}
	ctx := newEvalCtx(src, opts, NewSkolemEnv())
	if reqCtx != nil && reqCtx != context.Background() {
		ctx.reqCtx = reqCtx
	}
	return ctx.evalWhere(conds, seed)
}

type evalCtx struct {
	src   Source
	opts  *Options
	env   *SkolemEnv
	out   *graph.Graph
	rows  int
	plans []string
	// par is the resolved worker count for per-row operators.
	par int
	// avgDeg caches avgDegree(src) for the planner; the source does not
	// change during one evaluation.
	avgDeg float64
	// stats is the selectivity statistics the cost model consults; nil
	// under Options.NoStats (the heuristic baseline).
	stats *Stats
	// suppressPlans stops plan recording during not(...) sub-evaluations,
	// which run once per candidate row.
	suppressPlans bool
	// reqCtx, when non-nil, is polled at operator boundaries and between
	// row batches so long evaluations can be cancelled mid-query.
	reqCtx context.Context
	// Resource guards (zero = unlimited), from Options.
	maxRows  int
	maxNFA   int
	deadline time.Time

	cache *matcherCache
	// planCache shares condition-ordering plans across the not(...)
	// sub-evaluations of one evaluation, which otherwise recompute the
	// same greedy plan once per candidate row.
	planCache *planCache
	// metrics is the optional instrumentation sink (nil = disabled).
	metrics *obs.EvalMetrics
}

func newEvalCtx(src Source, opts *Options, env *SkolemEnv) *evalCtx {
	if opts == nil {
		opts = &Options{}
	}
	var stats *Stats
	if !opts.NoStats {
		if opts.Stats != nil {
			stats = opts.Stats
		} else {
			stats = CollectStats(src)
			stats.metrics = opts.Metrics
			opts.Metrics.RecordStatsBuild()
		}
	}
	return &evalCtx{
		src:       src,
		opts:      opts,
		env:       env,
		out:       graph.New(),
		par:       opts.parallelism(),
		avgDeg:    avgDegree(src),
		stats:     stats,
		maxRows:   opts.MaxRows,
		maxNFA:    opts.MaxNFAStates,
		deadline:  opts.Deadline,
		cache:     newMatcherCache(),
		planCache: newPlanCache(),
		metrics:   opts.Metrics,
	}
}

// forkSequential derives a context for a not(...) sub-evaluation running
// inside one worker: sequential (nested fan-out would oversubscribe the
// pool), plan recording off, matcher cache shared.
func (ctx *evalCtx) forkSequential() *evalCtx {
	return &evalCtx{
		src:           ctx.src,
		opts:          ctx.opts,
		env:           ctx.env,
		out:           ctx.out,
		par:           1,
		avgDeg:        ctx.avgDeg,
		stats:         ctx.stats,
		suppressPlans: true,
		reqCtx:        ctx.reqCtx,
		maxRows:       ctx.maxRows,
		maxNFA:        ctx.maxNFA,
		deadline:      ctx.deadline,
		cache:         ctx.cache,
		planCache:     ctx.planCache,
		metrics:       ctx.metrics,
	}
}

// cancelled returns a wrapped context error once the request context is
// done, or a *ResourceExhausted once the evaluation deadline has
// passed; nil while neither guard applies or trips.
func (ctx *evalCtx) cancelled() error {
	if ctx.reqCtx != nil {
		if err := ctx.reqCtx.Err(); err != nil {
			return fmt.Errorf("struql: evaluation cancelled: %w", err)
		}
	}
	if !ctx.deadline.IsZero() && time.Now().After(ctx.deadline) {
		ctx.metrics.RecordGuard(obs.GuardDeadline)
		return &ResourceExhausted{Limit: LimitDeadline}
	}
	return nil
}

// polled reports whether cancelled() can ever return non-nil, i.e.
// whether rowMap must batch rows between polls.
func (ctx *evalCtx) polled() bool {
	return ctx.reqCtx != nil || !ctx.deadline.IsZero()
}

func (ctx *evalCtx) matcher(p *PathExpr) *pathMatcher {
	return ctx.cache.get(p, ctx.src, ctx.maxNFA, ctx.metrics)
}

func (ctx *evalCtx) evalBlock(blk *Block, parent *Bindings) error {
	b, err := ctx.evalWhere(blk.Where, parent)
	if err != nil {
		return err
	}
	if len(blk.Aggregate) > 0 {
		b, err = aggregate(blk, b)
		if err != nil {
			return err
		}
	}
	ctx.rows += len(b.Rows)
	if err := ctx.construct(blk, b); err != nil {
		return err
	}
	for _, nb := range blk.Nested {
		if err := ctx.evalBlock(nb, b); err != nil {
			return err
		}
	}
	return nil
}

// evalWhere extends the parent relation by the conditions' constraints.
func (ctx *evalCtx) evalWhere(conds []Cond, parent *Bindings) (*Bindings, error) {
	// Output variable set: parent vars plus variables bound here.
	newVars := map[string]bool{}
	for _, c := range conds {
		c.boundVars(newVars)
	}
	vars := append([]string(nil), parent.Vars...)
	have := map[string]bool{}
	for _, v := range vars {
		have[v] = true
	}
	extras := make([]string, 0, len(newVars))
	for v := range newVars {
		if !have[v] {
			extras = append(extras, v)
		}
	}
	sort.Strings(extras)
	vars = append(vars, extras...)

	b := &Bindings{Vars: vars}
	for _, prow := range parent.Rows {
		row := make([]graph.Value, len(vars))
		copy(row, prow)
		b.Rows = append(b.Rows, row)
	}
	if len(conds) == 0 {
		return b, nil
	}

	ctx.metrics.RecordWhere()
	plan, err := ctx.orderConds(conds, parent.Vars)
	if err != nil {
		return nil, err
	}
	if !ctx.suppressPlans {
		ctx.plans = append(ctx.plans, plan.String())
	}
	ctx.metrics.RecordReorder(plan.Reordered())
	for _, step := range plan.Steps {
		if err := ctx.cancelled(); err != nil {
			return nil, err
		}
		ctx.recordAccess(step.Access)
		rowsIn := len(b.Rows)
		b, err = ctx.applyCond(conds[step.Index], step, b)
		if err != nil {
			return nil, err
		}
		if ctx.metrics != nil {
			ctx.metrics.RecordOp(opKind(conds[step.Index]), rowsIn, len(b.Rows))
		}
		if ctx.maxRows > 0 && len(b.Rows) > ctx.maxRows {
			ctx.metrics.RecordGuard(obs.GuardRows)
			return nil, &ResourceExhausted{Limit: LimitRows, Used: len(b.Rows), Max: ctx.maxRows}
		}
		if len(b.Rows) == 0 {
			break
		}
	}
	ctx.dedupRows(b)
	return b, nil
}

// opKind maps a condition to its obs operator index.
func opKind(c Cond) int {
	switch c.(type) {
	case *MemberCond:
		return obs.OpMember
	case *PredCond:
		return obs.OpPred
	case *CmpCond:
		return obs.OpCmp
	case *NotCond:
		return obs.OpNot
	case *EdgeCond:
		return obs.OpEdge
	case *PathCond:
		return obs.OpPath
	}
	return -1
}

// planKey identifies one condition-ordering problem: the conds slice
// (by first-condition identity plus length — every Cond instance
// belongs to exactly one condition list, so this pins the slice) and
// the set of already-bound input variables. Everything else the greedy
// planner consults (source sizes, statistics, avg degree) is fixed for
// the life of one evaluation, so equal keys always produce equal plans.
type planKey struct {
	cond0 Cond
	n     int
	bound string
}

// planCache memoizes condition-ordering plans. Its payoff is not(...)
// sub-evaluations, which re-plan the same condition list once per
// candidate row; with the cache the greedy planner (and its per-step
// description strings) runs once per distinct bound-variable shape.
type planCache struct {
	mu sync.Mutex
	m  map[planKey]*Plan
}

func newPlanCache() *planCache { return &planCache{m: map[planKey]*Plan{}} }

// orderConds returns the evaluation plan of a condition list: per
// condition, its scheduled position and access path. With NoReorder the
// schedule is first-ready textual order; otherwise the greedy planner
// picks, at each step, the ready condition with the lowest estimated
// cost given the bound variables. Plans are cached per (condition list,
// bound-variable set); cached plans are exactly what the planner would
// recompute, so caching never changes evaluation order.
func (ctx *evalCtx) orderConds(conds []Cond, inputVars []string) (*Plan, error) {
	if len(conds) == 0 {
		return &Plan{}, nil
	}
	key := planKey{cond0: conds[0], n: len(conds), bound: strings.Join(inputVars, "\x00")}
	ctx.planCache.mu.Lock()
	if p, ok := ctx.planCache.m[key]; ok {
		ctx.planCache.mu.Unlock()
		ctx.metrics.RecordPlan(true)
		return p, nil
	}
	ctx.planCache.mu.Unlock()
	ctx.metrics.RecordPlan(false)
	plan, err := ctx.planConds(conds, inputVars)
	if err != nil {
		return nil, err
	}
	ctx.planCache.mu.Lock()
	ctx.planCache.m[key] = plan
	ctx.planCache.mu.Unlock()
	return plan, nil
}

func avgDegree(src Source) float64 {
	n := src.NumNodes()
	if n == 0 {
		return 1
	}
	return float64(src.NumEdges())/float64(n) + 1
}

// applyCond extends or filters the relation by one condition, honoring
// the access hints the planner attached to its step.
func (ctx *evalCtx) applyCond(c Cond, step PlanStep, b *Bindings) (*Bindings, error) {
	switch c := c.(type) {
	case *MemberCond:
		return ctx.applyMember(c, b)
	case *PredCond:
		return ctx.applyPred(c, b)
	case *CmpCond:
		return ctx.applyCmp(c, b)
	case *NotCond:
		return ctx.applyNot(c, b)
	case *EdgeCond:
		return ctx.applyEdge(c, b)
	case *PathCond:
		return ctx.applyPath(c, step, b)
	}
	return nil, fmt.Errorf("struql: unknown condition type %T", c)
}

// resolveTerm returns the term's value under the row, and whether it is
// known (constants always are; variables when non-null).
func resolveTerm(t Term, b *Bindings, row []graph.Value) (graph.Value, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	i := b.Index(t.Var)
	if i < 0 {
		return graph.Null, false
	}
	v := row[i]
	return v, !v.IsNull()
}

// resolveAt is resolveTerm with the variable's column precomputed.
func resolveAt(t Term, idx int, row []graph.Value) (graph.Value, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	if idx < 0 {
		return graph.Null, false
	}
	v := row[idx]
	return v, !v.IsNull()
}

func (ctx *evalCtx) applyMember(c *MemberCond, b *Bindings) (*Bindings, error) {
	vi := b.Index(c.Var)
	rows, err := ctx.rowMap(b.Rows, func(_ int, chunk [][]graph.Value) ([][]graph.Value, error) {
		out := make([][]graph.Value, 0, len(chunk))
		for _, row := range chunk {
			v := row[vi]
			if !v.IsNull() {
				if v.IsNode() && ctx.src.InCollection(c.Coll, v.OID()) {
					out = append(out, row)
				}
				continue
			}
			for _, m := range ctx.src.Collection(c.Coll) {
				nr := cloneRow(row)
				nr[vi] = graph.NewNode(m)
				out = append(out, nr)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bindings{Vars: b.Vars, Rows: rows}, nil
}

func (ctx *evalCtx) applyPred(c *PredCond, b *Bindings) (*Bindings, error) {
	pred := builtinPreds[c.Name]
	ai := termIndex(c.Arg, b)
	rows, err := ctx.rowMap(b.Rows, func(_ int, chunk [][]graph.Value) ([][]graph.Value, error) {
		out := make([][]graph.Value, 0, len(chunk))
		for _, row := range chunk {
			v, known := resolveAt(c.Arg, ai, row)
			if known && pred(v) {
				out = append(out, row)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bindings{Vars: b.Vars, Rows: rows}, nil
}

func (ctx *evalCtx) applyCmp(c *CmpCond, b *Bindings) (*Bindings, error) {
	li, ri := termIndex(c.L, b), termIndex(c.R, b)
	rows, err := ctx.rowMap(b.Rows, func(_ int, chunk [][]graph.Value) ([][]graph.Value, error) {
		out := make([][]graph.Value, 0, len(chunk))
		for _, row := range chunk {
			l, lk := resolveAt(c.L, li, row)
			r, rk := resolveAt(c.R, ri, row)
			if !lk || !rk {
				continue
			}
			if cmpHolds(c.Op, l, r) {
				out = append(out, row)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bindings{Vars: b.Vars, Rows: rows}, nil
}

func cmpHolds(op CmpOp, l, r graph.Value) bool {
	switch op {
	case CmpEq:
		return graph.Equiv(l, r)
	case CmpNeq:
		return !graph.Equiv(l, r)
	}
	c := graph.Compare(l, r)
	switch op {
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	}
	return false
}

// applyNot keeps rows for which the negated conjunction has no solution,
// seeding the sub-evaluation with the row's current bindings. Each worker
// runs its chunk's sub-evaluations in a sequential forked context.
func (ctx *evalCtx) applyNot(c *NotCond, b *Bindings) (*Bindings, error) {
	rows, err := ctx.rowMap(b.Rows, func(_ int, chunk [][]graph.Value) ([][]graph.Value, error) {
		sub := ctx.forkSequential()
		out := make([][]graph.Value, 0, len(chunk))
		for _, row := range chunk {
			seed := &Bindings{}
			for i, v := range b.Vars {
				if !row[i].IsNull() {
					seed.Vars = append(seed.Vars, v)
				}
			}
			srow := make([]graph.Value, 0, len(seed.Vars))
			for i := range b.Vars {
				if !row[i].IsNull() {
					srow = append(srow, row[i])
				}
			}
			seed.Rows = [][]graph.Value{srow}
			sb, err := sub.evalWhere(c.Conds, seed)
			if err != nil {
				return nil, err
			}
			if len(sb.Rows) == 0 {
				out = append(out, row)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bindings{Vars: b.Vars, Rows: rows}, nil
}

// bindIfConsistent writes v into row at position i when i >= 0; it reports
// false if the position already holds a different value.
func bindIfConsistent(row []graph.Value, i int, v graph.Value) bool {
	if i < 0 {
		return true
	}
	if row[i].IsNull() {
		row[i] = v
		return true
	}
	return row[i] == v
}

// applyEdge evaluates x -> l -> y with an arc variable, choosing the
// access path from what is already bound.
func (ctx *evalCtx) applyEdge(c *EdgeCond, b *Bindings) (*Bindings, error) {
	fi, ti := termIndex(c.From, b), termIndex(c.To, b)
	li := b.Index(c.LabelVar)
	rows, err := ctx.rowMap(b.Rows, func(_ int, chunk [][]graph.Value) ([][]graph.Value, error) {
		out := make([][]graph.Value, 0, len(chunk))
		for _, row := range chunk {
			from, fromKnown := resolveAt(c.From, fi, row)
			to, toKnown := resolveAt(c.To, ti, row)
			label := graph.Null
			labelKnown := false
			if li >= 0 && !row[li].IsNull() {
				label, labelKnown = row[li], true
			}
			emit := func(e graph.Edge) {
				nr := cloneRow(row)
				if !bindIfConsistent(nr, fi, graph.NewNode(e.From)) {
					return
				}
				if !bindIfConsistent(nr, li, graph.NewString(e.Label)) {
					return
				}
				if !bindIfConsistent(nr, ti, e.To) {
					return
				}
				out = append(out, nr)
			}
			switch {
			case fromKnown:
				if !from.IsNode() {
					continue
				}
				if labelKnown {
					for _, v := range ctx.src.OutLabel(from.OID(), label.Text()) {
						emit(graph.Edge{From: from.OID(), Label: label.Text(), To: v})
					}
				} else {
					for _, e := range ctx.src.Out(from.OID()) {
						emit(e)
					}
				}
			case toKnown:
				for _, e := range ctx.src.In(to) {
					if labelKnown && e.Label != label.Text() {
						continue
					}
					emit(e)
				}
			case labelKnown:
				for _, e := range ctx.src.EdgesLabeled(label.Text()) {
					emit(e)
				}
			default:
				for _, n := range ctx.src.Nodes() {
					for _, e := range ctx.src.Out(n) {
						emit(e)
					}
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bindings{Vars: b.Vars, Rows: rows}, nil
}

// applyPath evaluates x -> R -> y. Single-literal paths use edge access
// paths; general expressions run the product-automaton BFS, its start
// set seeded from the planner's label hint when the path must begin
// with known concrete labels, from a full node scan otherwise.
func (ctx *evalCtx) applyPath(c *PathCond, step PlanStep, b *Bindings) (*Bindings, error) {
	if label, ok := singleLabel(c.Path); ok {
		return ctx.applySingleLabel(c, label, step, b)
	}
	fi, ti := termIndex(c.From, b), termIndex(c.To, b)
	m := ctx.matcher(c.Path)
	// allStarts computes, once, the start set for rows whose from
	// variable is unbound: the distinct sources of the seed labels'
	// extents, or every node. Lazy — rows with a bound start never pay
	// for it — and shared across worker goroutines.
	var startsOnce sync.Once
	var seededStarts []graph.Value
	allStarts := func() []graph.Value {
		startsOnce.Do(func() {
			if len(step.SeedLabels) > 0 {
				seededStarts = seedStarts(ctx.src, step.SeedLabels)
				return
			}
			for _, n := range ctx.src.Nodes() {
				seededStarts = append(seededStarts, graph.NewNode(n))
			}
		})
		return seededStarts
	}
	rows, err := ctx.rowMap(b.Rows, func(_ int, chunk [][]graph.Value) ([][]graph.Value, error) {
		out := make([][]graph.Value, 0, len(chunk))
		for _, row := range chunk {
			from, fromKnown := resolveAt(c.From, fi, row)
			to, toKnown := resolveAt(c.To, ti, row)
			starts := []graph.Value{from}
			if !fromKnown {
				starts = allStarts()
			}
			for _, s := range starts {
				if !s.IsNode() {
					continue // paths start at nodes (active-domain semantics)
				}
				if toKnown {
					hit, err := m.matches(s.OID(), to)
					if err != nil {
						ctx.metrics.RecordGuard(obs.GuardNFAStates)
						return nil, err
					}
					if hit {
						nr := cloneRow(row)
						if bindIfConsistent(nr, fi, s) {
							out = append(out, nr)
						}
					}
					continue
				}
				vs, err := m.reachable(s.OID())
				if err != nil {
					ctx.metrics.RecordGuard(obs.GuardNFAStates)
					return nil, err
				}
				for _, v := range vs {
					nr := cloneRow(row)
					if bindIfConsistent(nr, fi, s) && bindIfConsistent(nr, ti, v) {
						out = append(out, nr)
					}
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bindings{Vars: b.Vars, Rows: rows}, nil
}

func (ctx *evalCtx) applySingleLabel(c *PathCond, label string, step PlanStep, b *Bindings) (*Bindings, error) {
	fi, ti := termIndex(c.From, b), termIndex(c.To, b)
	rows, err := ctx.rowMap(b.Rows, func(_ int, chunk [][]graph.Value) ([][]graph.Value, error) {
		out := make([][]graph.Value, 0, len(chunk))
		for _, row := range chunk {
			from, fromKnown := resolveAt(c.From, fi, row)
			to, toKnown := resolveAt(c.To, ti, row)
			emit := func(e graph.Edge) {
				nr := cloneRow(row)
				if bindIfConsistent(nr, fi, graph.NewNode(e.From)) && bindIfConsistent(nr, ti, e.To) {
					out = append(out, nr)
				}
			}
			switch {
			case fromKnown && toKnown && step.PreferIn:
				// Both endpoints bound and the label's fan-in is the
				// smaller: verify through the in-edge index.
				if !from.IsNode() {
					continue
				}
				for _, e := range ctx.src.In(to) {
					if e.Label == label && e.From == from.OID() {
						emit(e)
					}
				}
			case fromKnown:
				if !from.IsNode() {
					continue
				}
				for _, v := range ctx.src.OutLabel(from.OID(), label) {
					if toKnown && v != to {
						continue
					}
					emit(graph.Edge{From: from.OID(), Label: label, To: v})
				}
			case toKnown:
				for _, e := range ctx.src.In(to) {
					if e.Label == label {
						emit(e)
					}
				}
			default:
				for _, e := range ctx.src.EdgesLabeled(label) {
					emit(e)
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bindings{Vars: b.Vars, Rows: rows}, nil
}

func termIndex(t Term, b *Bindings) int {
	if !t.IsVar() {
		return -1
	}
	return b.Index(t.Var)
}

func cloneRow(row []graph.Value) []graph.Value {
	nr := make([]graph.Value, len(row))
	copy(nr, row)
	return nr
}

func (ctx *evalCtx) dedupRows(b *Bindings) {
	if len(b.Rows) < 2 {
		return
	}
	// Precompute one sort key per row: computing value keys inside the
	// comparator would allocate O(n log n) strings. Key computation is
	// embarrassingly parallel; the sort and scan stay sequential.
	keys := make([]string, len(b.Rows))
	keyRange := func(lo, hi int) {
		var kb strings.Builder
		for i := lo; i < hi; i++ {
			kb.Reset()
			for _, v := range b.Rows[i] {
				kb.WriteString(v.Key())
				kb.WriteByte(0)
			}
			keys[i] = kb.String()
		}
	}
	if ctx.par > 1 && len(b.Rows) >= minParallelRows {
		var wg sync.WaitGroup
		for _, bounds := range chunkBounds(len(b.Rows), ctx.par) {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				keyRange(lo, hi)
			}(bounds[0], bounds[1])
		}
		wg.Wait()
	} else {
		keyRange(0, len(b.Rows))
	}
	type keyed struct {
		key string
		row []graph.Value
	}
	keyedRows := make([]keyed, len(b.Rows))
	for i, row := range b.Rows {
		keyedRows[i] = keyed{key: keys[i], row: row}
	}
	sort.Slice(keyedRows, func(i, j int) bool { return keyedRows[i].key < keyedRows[j].key })
	out := b.Rows[:0]
	for i, kr := range keyedRows {
		if i == 0 || kr.key != keyedRows[i-1].key {
			out = append(out, kr.row)
		}
	}
	b.Rows = out
}

// aggregate groups the binding relation by the AggBy variables and folds
// each group through the aggregate expressions (§6.2's "grouping and
// aggregation" extension). The result binds only the grouping variables
// and the aggregate results, one row per group.
func aggregate(blk *Block, b *Bindings) (*Bindings, error) {
	byIdx := make([]int, len(blk.AggBy))
	for i, v := range blk.AggBy {
		byIdx[i] = b.Index(v)
		if byIdx[i] < 0 {
			return nil, fmt.Errorf("struql: line %d: grouping variable %s unbound", blk.Line, v)
		}
	}
	argIdx := make([]int, len(blk.Aggregate))
	for i, a := range blk.Aggregate {
		argIdx[i] = b.Index(a.Arg)
		if argIdx[i] < 0 {
			return nil, fmt.Errorf("struql: line %d: aggregated variable %s unbound", a.Pos, a.Arg)
		}
	}
	type group struct {
		key  []graph.Value
		rows [][]graph.Value
	}
	groups := map[string]*group{}
	var order []string
	for _, row := range b.Rows {
		key := make([]graph.Value, len(byIdx))
		var kb strings.Builder
		for i, bi := range byIdx {
			key[i] = row[bi]
			kb.WriteString(row[bi].Key())
			kb.WriteByte(0)
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = &group{key: key}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, row)
	}
	sort.Strings(order)
	out := &Bindings{Vars: append([]string(nil), blk.AggBy...)}
	for _, a := range blk.Aggregate {
		out.Vars = append(out.Vars, a.As)
	}
	for _, k := range order {
		g := groups[k]
		row := append([]graph.Value(nil), g.key...)
		for i, a := range blk.Aggregate {
			row = append(row, foldAgg(a.Fn, argIdx[i], g.rows))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// foldAgg computes one aggregate over a group's distinct argument values.
// Count counts them; sum/avg fold their numeric readings (non-numeric
// values contribute 0); min/max use the dynamic-coercion order.
func foldAgg(fn AggFn, argIdx int, rows [][]graph.Value) graph.Value {
	distinct := map[string]graph.Value{}
	for _, row := range rows {
		v := row[argIdx]
		distinct[v.Key()] = v
	}
	if fn == AggCount {
		return graph.NewInt(int64(len(distinct)))
	}
	// Fold in sorted key order: float addition is not associative and
	// min/max tie-break on the first of Compare-equal values, so map
	// iteration order would otherwise leak into results.
	keys := make([]string, 0, len(distinct))
	for k := range distinct {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var best graph.Value
	sum := 0.0
	allInt := true
	first := true
	for _, k := range keys {
		v := distinct[k]
		switch fn {
		case AggSum, AggAvg:
			switch v.Kind() {
			case graph.KindInt:
				sum += float64(v.Int())
			case graph.KindFloat:
				sum += v.Float()
				allInt = false
			default:
				if f, ok := numericText(v); ok {
					sum += f
					allInt = false
				}
			}
		case AggMin:
			if first || graph.Compare(v, best) < 0 {
				best = v
			}
		case AggMax:
			if first || graph.Compare(v, best) > 0 {
				best = v
			}
		}
		first = false
	}
	switch fn {
	case AggSum:
		if allInt {
			return graph.NewInt(int64(sum))
		}
		return graph.NewFloat(sum)
	case AggAvg:
		if len(distinct) == 0 {
			return graph.NewFloat(0)
		}
		return graph.NewFloat(sum / float64(len(distinct)))
	}
	return best
}

func numericText(v graph.Value) (float64, bool) {
	var f float64
	_, err := fmt.Sscanf(v.Text(), "%g", &f)
	return f, err == nil
}

// construct runs the create, link, and collect clauses once per binding
// row (§2.2). Skolem terms in link and collect clauses implicitly create
// their nodes; edges are only ever added from Skolem-created nodes, so
// existing nodes are never extended.
func (ctx *evalCtx) construct(blk *Block, b *Bindings) error {
	for ri, row := range b.Rows {
		_ = ri
		skolemOID := func(st SkolemTerm) (graph.OID, error) {
			args := make([]graph.Value, len(st.Args))
			for i, a := range st.Args {
				vi := b.Index(a)
				if vi < 0 || row[vi].IsNull() {
					return "", fmt.Errorf("struql: line %d: Skolem argument %s unbound at construction", st.Pos, a)
				}
				args[i] = row[vi]
			}
			return ctx.env.OID(st.Fn, args), nil
		}
		resolveLink := func(t LinkTerm, pos int) (graph.Value, error) {
			if t.Skolem != nil {
				oid, err := skolemOID(*t.Skolem)
				if err != nil {
					return graph.Null, err
				}
				ctx.out.AddNode(oid)
				return graph.NewNode(oid), nil
			}
			v, known := resolveTerm(*t.Term, b, row)
			if !known {
				return graph.Null, fmt.Errorf("struql: line %d: variable %s unbound at construction", pos, t.Term.Var)
			}
			return v, nil
		}
		for _, st := range blk.Create {
			oid, err := skolemOID(st)
			if err != nil {
				return err
			}
			ctx.out.AddNode(oid)
		}
		for _, le := range blk.Link {
			fromOID, err := skolemOID(le.From)
			if err != nil {
				return err
			}
			ctx.out.AddNode(fromOID)
			label := le.Label.Lit
			if le.Label.IsVar {
				vi := b.Index(le.Label.Var)
				if vi < 0 || row[vi].IsNull() {
					return fmt.Errorf("struql: line %d: arc variable %s unbound at construction", le.Pos, le.Label.Var)
				}
				label = row[vi].Text()
			}
			to, err := resolveLink(le.To, le.Pos)
			if err != nil {
				return err
			}
			ctx.out.AddEdge(fromOID, label, to)
		}
		for _, ce := range blk.Collect {
			v, err := resolveLink(ce.Target, ce.Pos)
			if err != nil {
				return err
			}
			if !v.IsNode() {
				return fmt.Errorf("struql: line %d: collect %s: collections contain objects, not the atom %s",
					ce.Pos, ce.Coll, v)
			}
			ctx.out.AddToCollection(ce.Coll, v.OID())
		}
	}
	return nil
}
