package struql

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"strudel/internal/graph"
)

// genQuery builds a small random-but-valid StruQL query from a seed: a
// collection scan, a few path/edge/filter conditions, and a construction
// stage using the bound variables.
func genQuery(seed uint32) string {
	rnd := func() uint32 { seed = seed*1664525 + 1013904223; return seed >> 16 }
	var b strings.Builder
	b.WriteString("where Items(x)")
	vars := []string{"x"}
	nConds := int(rnd()%4) + 1
	for i := 0; i < nConds; i++ {
		v := fmt.Sprintf("v%d", i)
		switch rnd() % 5 {
		case 0:
			fmt.Fprintf(&b, ", x -> %q -> %s", []string{"year", "kind", "next"}[rnd()%3], v)
			vars = append(vars, v)
		case 1:
			fmt.Fprintf(&b, ", x -> l%d -> %s", i, v)
			vars = append(vars, v)
		case 2:
			fmt.Fprintf(&b, ", x -> (\"next\")* -> %s, isNode(%s)", v, v)
			vars = append(vars, v)
		case 3:
			fmt.Fprintf(&b, ", x -> \"year\" -> %s, %s > %d", v, v, 1990+rnd()%8)
			vars = append(vars, v)
		case 4:
			fmt.Fprintf(&b, ", not(x -> %q -> z%d)", []string{"extra", "kind"}[rnd()%2], i)
		}
	}
	b.WriteString("\ncreate Out(x)\nlink ")
	tgt := vars[rnd()%uint32(len(vars))]
	fmt.Fprintf(&b, "Out(x) -> \"t\" -> %s", tgt)
	if rnd()%2 == 0 {
		b.WriteString("\ncollect Results(Out(x))")
	}
	return b.String()
}

func propertyGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		oid := graph.OID(fmt.Sprintf("i%02d", i))
		g.AddToCollection("Items", oid)
		g.AddEdge(oid, "year", graph.NewInt(int64(1990+i%8)))
		g.AddEdge(oid, "kind", graph.NewString([]string{"a", "b"}[i%2]))
		g.AddEdge(oid, "next", graph.NewNode(graph.OID(fmt.Sprintf("i%02d", (i+1)%n))))
		if i%3 == 0 {
			g.AddEdge(oid, "extra", graph.NewString("e"))
		}
	}
	return g
}

func TestRandomQueriesPrintParseFixedPoint(t *testing.T) {
	f := func(seed uint32) bool {
		src := genQuery(seed)
		q, err := Parse(src)
		if err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, src)
			return false
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Logf("seed %d reparse: %v\n%s", seed, err, printed)
			return false
		}
		return q2.String() == printed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandomQueriesOptimizerEquivalence(t *testing.T) {
	g := propertyGraph(12)
	src := NewGraphSource(g)
	f := func(seed uint32) bool {
		q := MustParse(genQuery(seed))
		opt, err1 := Eval(q, src, nil)
		txt, err2 := Eval(q, src, &Options{NoReorder: true})
		if err1 != nil || err2 != nil {
			t.Logf("seed %d: %v / %v", seed, err1, err2)
			return false
		}
		if opt.Graph.Dump() != txt.Graph.Dump() {
			t.Logf("seed %d diverged:\n%s", seed, genQuery(seed))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRandomQueriesDeterministic(t *testing.T) {
	g := propertyGraph(10)
	src := NewGraphSource(g)
	f := func(seed uint32) bool {
		q := MustParse(genQuery(seed))
		a, err1 := Eval(q, src, nil)
		b, err2 := Eval(q, src, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Graph.Dump() == b.Graph.Dump()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRandomQueriesRecoverableFromSchema(t *testing.T) {
	// Print→parse suffices for the schema package's RecoverQuery tests,
	// but here we assert at least that every random query's link clauses
	// survive printing (count preserved).
	f := func(seed uint32) bool {
		q := MustParse(genQuery(seed))
		q2 := MustParse(q.String())
		return q.LinkClauseCount() == q2.LinkClauseCount() &&
			strings.Join(q.SkolemFunctions(), ",") == strings.Join(q2.SkolemFunctions(), ",")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
