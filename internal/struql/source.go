// Package struql implements StruQL, Strudel's declarative language for
// querying and restructuring semistructured data (§2.2).
//
// A StruQL query is a sequence of blocks. Each block has a query stage —
// a where clause whose meaning is the relation of all assignments of query
// variables to oids and labels in the data graph satisfying its conditions
// — and a construction stage: create (Skolem-function node construction),
// link (edge construction), and collect (named output collections) clauses,
// applied once per row of that relation. Blocks nest; a nested block's
// where clause is conjoined with its ancestors' (the paper's Q1 ∧ Q2
// semantics). Since data graphs and site graphs are both labeled graphs,
// queries compose: a query can be applied to the result of another.
//
// Conditions include collection membership C(x), built-in predicates on
// nodes and atoms, comparisons with dynamic coercion, safe negation, single
// edges binding arc variables (x -> l -> y), and regular path expressions
// (x -> "a"."b"* -> y) that are more general than regular expressions
// because edge predicates may appear where labels do.
package struql

import (
	"sort"

	"strudel/internal/graph"
)

// Source is the evaluator's view of a graph. Two implementations matter:
// GraphSource (naive scans over a plain graph — the unoptimized baseline)
// and repo.Indexed (the repository's fully-indexed access paths, §2.1).
// The optimizer consults the statistics methods to order conditions.
type Source interface {
	// Collection returns the members of the named collection, sorted.
	Collection(name string) []graph.OID
	// InCollection reports whether oid belongs to the named collection.
	InCollection(name string, oid graph.OID) bool
	// CollectionNames returns all collection names, sorted.
	CollectionNames() []string
	// CollectionSize returns the extent size of a collection.
	CollectionSize(name string) int
	// Out returns the outgoing edges of a node, sorted.
	Out(oid graph.OID) []graph.Edge
	// OutLabel returns the values of the node's edges with the label.
	OutLabel(oid graph.OID, label string) []graph.Value
	// EdgesLabeled returns every edge carrying the label.
	EdgesLabeled(label string) []graph.Edge
	// In returns every edge whose target equals v.
	In(v graph.Value) []graph.Edge
	// Nodes returns every node oid, sorted.
	Nodes() []graph.OID
	// Labels returns every edge label, sorted (the queryable schema).
	Labels() []string
	// LabelCount returns the number of edges with the label.
	LabelCount(label string) int
	// NumEdges returns the total edge count.
	NumEdges() int
	// NumNodes returns the total node count (an O(1) statistic).
	NumNodes() int
}

// GraphSource adapts a plain graph to Source with linear scans for the
// indexed access paths. It is the ablation baseline for experiment E6: the
// same queries run against it and against the indexed repository.
type GraphSource struct {
	G *graph.Graph
}

// NewGraphSource wraps g.
func NewGraphSource(g *graph.Graph) GraphSource { return GraphSource{G: g} }

// Collection returns the members of the named collection, sorted.
func (s GraphSource) Collection(name string) []graph.OID { return s.G.Collection(name) }

// InCollection reports whether oid belongs to the named collection.
func (s GraphSource) InCollection(name string, oid graph.OID) bool {
	return s.G.InCollection(name, oid)
}

// CollectionNames returns all collection names, sorted.
func (s GraphSource) CollectionNames() []string { return s.G.CollectionNames() }

// CollectionSize returns the extent size of a collection.
func (s GraphSource) CollectionSize(name string) int { return s.G.CollectionSize(name) }

// Out returns the outgoing edges of a node, sorted.
func (s GraphSource) Out(oid graph.OID) []graph.Edge { return s.G.Out(oid) }

// OutLabel returns the values of the node's edges with the label.
func (s GraphSource) OutLabel(oid graph.OID, label string) []graph.Value {
	return s.G.OutLabel(oid, label)
}

// EdgesLabeled scans every edge for the label.
func (s GraphSource) EdgesLabeled(label string) []graph.Edge {
	var out []graph.Edge
	s.G.Edges(func(e graph.Edge) bool {
		if e.Label == label {
			out = append(out, e)
		}
		return true
	})
	return out
}

// In scans every edge for the target value.
func (s GraphSource) In(v graph.Value) []graph.Edge {
	var out []graph.Edge
	s.G.Edges(func(e graph.Edge) bool {
		if e.To == v {
			out = append(out, e)
		}
		return true
	})
	return out
}

// Nodes returns every node oid, sorted.
func (s GraphSource) Nodes() []graph.OID { return s.G.Nodes() }

// Labels returns every edge label, sorted.
func (s GraphSource) Labels() []string { return s.G.Labels() }

// LabelCount scans every edge counting the label.
func (s GraphSource) LabelCount(label string) int { return len(s.EdgesLabeled(label)) }

// NumEdges returns the total edge count.
func (s GraphSource) NumEdges() int { return s.G.NumEdges() }

// NumNodes returns the total node count.
func (s GraphSource) NumNodes() int { return s.G.NumNodes() }

// UnionSource presents the union of two sources as one graph; composed
// queries see the original data graph plus graphs built by earlier queries.
// When both sides know a node or collection, answers concatenate with
// duplicates removed.
type UnionSource struct {
	A, B Source
}

// NewUnionSource returns the union of a and b.
func NewUnionSource(a, b Source) UnionSource { return UnionSource{A: a, B: b} }

// Collection returns the union of both members lists.
func (u UnionSource) Collection(name string) []graph.OID {
	return dedupOIDs(append(u.A.Collection(name), u.B.Collection(name)...))
}

// InCollection reports membership in either side.
func (u UnionSource) InCollection(name string, oid graph.OID) bool {
	return u.A.InCollection(name, oid) || u.B.InCollection(name, oid)
}

// CollectionNames returns the union of names.
func (u UnionSource) CollectionNames() []string {
	return dedupStrings(append(u.A.CollectionNames(), u.B.CollectionNames()...))
}

// CollectionSize returns the size of the unioned extent.
func (u UnionSource) CollectionSize(name string) int { return len(u.Collection(name)) }

// Out returns the union of outgoing edges.
func (u UnionSource) Out(oid graph.OID) []graph.Edge {
	return dedupEdges(append(u.A.Out(oid), u.B.Out(oid)...))
}

// OutLabel returns the union of attribute values.
func (u UnionSource) OutLabel(oid graph.OID, label string) []graph.Value {
	return dedupValues(append(u.A.OutLabel(oid, label), u.B.OutLabel(oid, label)...))
}

// EdgesLabeled returns the union of labeled edges.
func (u UnionSource) EdgesLabeled(label string) []graph.Edge {
	return dedupEdges(append(u.A.EdgesLabeled(label), u.B.EdgesLabeled(label)...))
}

// In returns the union of in-edges.
func (u UnionSource) In(v graph.Value) []graph.Edge {
	return dedupEdges(append(u.A.In(v), u.B.In(v)...))
}

// Nodes returns the union of node sets.
func (u UnionSource) Nodes() []graph.OID {
	return dedupOIDs(append(u.A.Nodes(), u.B.Nodes()...))
}

// Labels returns the union of label sets.
func (u UnionSource) Labels() []string {
	return dedupStrings(append(u.A.Labels(), u.B.Labels()...))
}

// LabelCount over-counts edges present in both sides; it is a statistic,
// not an answer, so the approximation is acceptable.
func (u UnionSource) LabelCount(label string) int {
	return u.A.LabelCount(label) + u.B.LabelCount(label)
}

// NumEdges over-counts shared edges, acceptable for a statistic.
func (u UnionSource) NumEdges() int { return u.A.NumEdges() + u.B.NumEdges() }

// NumNodes over-counts shared nodes, acceptable for a statistic.
func (u UnionSource) NumNodes() int { return u.A.NumNodes() + u.B.NumNodes() }

func dedupOIDs(in []graph.OID) []graph.OID {
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func dedupStrings(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func dedupValues(in []graph.Value) []graph.Value {
	sort.Slice(in, func(i, j int) bool { return graph.KeyCompare(in[i], in[j]) < 0 })
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func dedupEdges(in []graph.Edge) []graph.Edge {
	sort.Slice(in, func(i, j int) bool {
		a, b := in[i], in[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return graph.KeyCompare(a.To, b.To) < 0
	})
	out := in[:0]
	for i, e := range in {
		if i == 0 || e != in[i-1] {
			out = append(out, e)
		}
	}
	return out
}
