package struql

import (
	"bytes"
	"hash/maphash"
	"strings"

	"strudel/internal/graph"
)

// SkolemEnv memoizes Skolem-function applications: by definition a Skolem
// function applied to the same inputs produces the same node oid (§2.2).
// Sharing one environment across composed queries lets a later query
// re-derive nodes created by an earlier one — RootPage() names the same
// object in every query of a site definition.
//
// Construction creates an oid per result row, so the environment is built
// for allocation-free hits and one-allocation misses: memo keys live
// concatenated in one byte arena indexed by a hash table with chained
// entries, and the display form is rendered into a reusable buffer —
// the only per-miss allocation is the oid string itself.
type SkolemEnv struct {
	seed maphash.Seed
	// index maps a key hash to the head of a 1-based chain through next;
	// entry i's key is keys[offs[i]:offs[i+1]] and its oid is oids[i].
	index map[uint64]int32
	next  []int32
	keys  []byte
	offs  []int32
	oids  []graph.OID
	// used holds every issued oid (keys are graph.OID strings), for the
	// "#n" disambiguation of display-form collisions.
	used map[string]bool
	// keyBuf and oidBuf are reused across OID calls.
	keyBuf []byte
	oidBuf []byte
}

// NewSkolemEnv returns an empty environment.
func NewSkolemEnv() *SkolemEnv {
	return &SkolemEnv{
		seed:  maphash.MakeSeed(),
		index: make(map[uint64]int32),
		offs:  []int32{0},
		used:  make(map[string]bool),
	}
}

// OID returns the node identifier for fn(args...). The display form is
// "fn(a,b)" with argument texts sanitized; if two distinct argument tuples
// sanitize to the same display form, later ones get a "#n" suffix so OIDs
// remain injective in the inputs.
func (s *SkolemEnv) OID(fn string, args []graph.Value) graph.OID {
	buf := append(s.keyBuf[:0], fn...)
	for _, a := range args {
		buf = append(buf, 0)
		buf = graph.AppendKey(buf, a)
	}
	s.keyBuf = buf
	h := maphash.Bytes(s.seed, buf)
	for i := s.index[h]; i != 0; i = s.next[i-1] {
		if bytes.Equal(s.keys[s.offs[i-1]:s.offs[i]], buf) {
			return s.oids[i-1]
		}
	}
	oid := s.render(fn, args)
	s.keys = append(s.keys, buf...)
	s.offs = append(s.offs, int32(len(s.keys)))
	s.oids = append(s.oids, oid)
	s.next = append(s.next, s.index[h])
	s.index[h] = int32(len(s.oids))
	s.used[string(oid)] = true
	return oid
}

// render produces the display-form oid for fn(args...), disambiguated
// against already-issued oids.
func (s *SkolemEnv) render(fn string, args []graph.Value) graph.OID {
	b := append(s.oidBuf[:0], fn...)
	b = append(b, '(')
	for i, a := range args {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendSanitized(b, a.Text())
	}
	b = append(b, ')')
	s.oidBuf = b
	if !s.used[string(b)] {
		return graph.OID(b)
	}
	base := string(b)
	for n := 2; ; n++ {
		cand := base + "#" + itoa(n)
		if !s.used[cand] {
			return graph.OID(cand)
		}
	}
}

// maxArg bounds an argument's rendered length inside an oid.
const maxArg = 48

// sanitizeArg makes an argument safe inside an oid: parentheses, commas,
// and whitespace become underscores, and long arguments are truncated with
// a length marker so oids stay readable.
func sanitizeArg(s string) string {
	mapped := strings.Map(sanitizeRune, s)
	if len(mapped) > maxArg {
		mapped = mapped[:maxArg] + "~" + itoa(len(s))
	}
	return mapped
}

func sanitizeRune(r rune) rune {
	switch r {
	case '(', ')', ',', ' ', '\t', '\n', '#':
		return '_'
	default:
		return r
	}
}

// appendSanitized appends sanitizeArg(s) to dst. ASCII arguments — the
// overwhelmingly common case — map byte by byte with no intermediate
// string; anything else routes through sanitizeArg so the rune-level
// semantics (including invalid-UTF-8 replacement) stay identical.
func appendSanitized(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return append(dst, sanitizeArg(s)...)
		}
	}
	start := len(dst)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '(', ')', ',', ' ', '\t', '\n', '#':
			c = '_'
		}
		dst = append(dst, c)
	}
	if len(dst)-start > maxArg {
		dst = dst[:start+maxArg]
		dst = append(dst, '~')
		dst = appendItoa(dst, len(s))
	}
	return dst
}

func itoa(n int) string {
	return string(appendItoa(nil, n))
}

func appendItoa(dst []byte, n int) []byte {
	if n == 0 {
		return append(dst, '0')
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return append(dst, buf[i:]...)
}

// Size returns the number of distinct applications recorded.
func (s *SkolemEnv) Size() int { return len(s.oids) }
