package struql

import (
	"strings"

	"strudel/internal/graph"
)

// SkolemEnv memoizes Skolem-function applications: by definition a Skolem
// function applied to the same inputs produces the same node oid (§2.2).
// Sharing one environment across composed queries lets a later query
// re-derive nodes created by an earlier one — RootPage() names the same
// object in every query of a site definition.
type SkolemEnv struct {
	memo map[string]graph.OID
	used map[graph.OID]bool
}

// NewSkolemEnv returns an empty environment.
func NewSkolemEnv() *SkolemEnv {
	return &SkolemEnv{memo: make(map[string]graph.OID), used: make(map[graph.OID]bool)}
}

// OID returns the node identifier for fn(args...). The display form is
// "fn(a,b)" with argument texts sanitized; if two distinct argument tuples
// sanitize to the same display form, later ones get a "#n" suffix so OIDs
// remain injective in the inputs.
func (s *SkolemEnv) OID(fn string, args []graph.Value) graph.OID {
	var keyB strings.Builder
	keyB.WriteString(fn)
	for _, a := range args {
		keyB.WriteByte(0)
		keyB.WriteString(a.Key())
	}
	key := keyB.String()
	if oid, ok := s.memo[key]; ok {
		return oid
	}
	base := renderOID(fn, args)
	oid := graph.OID(base)
	for n := 2; s.used[oid]; n++ {
		oid = graph.OID(base + "#" + itoa(n))
	}
	s.memo[key] = oid
	s.used[oid] = true
	return oid
}

func renderOID(fn string, args []graph.Value) string {
	var b strings.Builder
	b.WriteString(fn)
	b.WriteByte('(')
	for i, a := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeArg(a.Text()))
	}
	b.WriteByte(')')
	return b.String()
}

// sanitizeArg makes an argument safe inside an oid: parentheses, commas,
// and whitespace become underscores, and long arguments are truncated with
// a length marker so oids stay readable.
func sanitizeArg(s string) string {
	const maxArg = 48
	mapped := strings.Map(func(r rune) rune {
		switch r {
		case '(', ')', ',', ' ', '\t', '\n', '#':
			return '_'
		default:
			return r
		}
	}, s)
	if len(mapped) > maxArg {
		mapped = mapped[:maxArg] + "~" + itoa(len(s))
	}
	return mapped
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Size returns the number of distinct applications recorded.
func (s *SkolemEnv) Size() int { return len(s.memo) }
