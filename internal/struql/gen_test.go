package struql

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"strudel/internal/graph"
	"strudel/internal/repo"
)

// This file is the randomized differential oracle: seeded generators for
// data graphs and queries, and tests asserting the optimized evaluator
// (cost-based planner, indexes, caches, parallelism, guards) and the
// naive reference evaluator agree byte-for-byte on every generated
// (graph, query) pair. Seeds are plain integers so any divergence report
// is reproducible with `go test -run TestDifferentialOracle`.

// oracleRand is a small deterministic generator (64-bit LCG, high bits),
// self-contained so the corpus never shifts under math/rand changes.
type oracleRand struct{ s uint64 }

func newOracleRand(seed uint64) *oracleRand {
	return &oracleRand{s: seed*2654435761 + 0x9e3779b97f4a7c15}
}

func (r *oracleRand) n(k int) int {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return int((r.s >> 33) % uint64(k))
}

func (r *oracleRand) pick(ss ...string) string { return ss[r.n(len(ss))] }

// genGraph builds a seeded random data graph with deliberately skewed
// label selectivities — "id" is unique per node, "tag" is dense, "next"
// is a near-chain, "ref" is sparse and cross-cutting — so the cost-based
// planner's choices actually differ from textual order.
func genGraph(seed uint64) *graph.Graph {
	r := newOracleRand(seed)
	g := graph.New()
	n := 6 + r.n(20)
	oid := func(i int) graph.OID { return graph.OID(fmt.Sprintf("n%02d", i)) }
	for i := 0; i < n; i++ {
		g.AddToCollection("Items", oid(i))
		if r.n(3) == 0 {
			g.AddToCollection("Extra", oid(i))
		}
		g.AddEdge(oid(i), "id", graph.NewString(fmt.Sprintf("id%02d", i)))
		g.AddEdge(oid(i), "year", graph.NewInt(int64(1990+r.n(8))))
		if r.n(4) != 0 {
			g.AddEdge(oid(i), "kind", graph.NewString(r.pick("a", "b", "c")))
		}
		for t := r.n(3); t > 0; t-- {
			g.AddEdge(oid(i), "tag", graph.NewString(r.pick("t1", "t2", "t3")))
		}
		if r.n(5) != 0 {
			g.AddEdge(oid(i), "next", graph.NewNode(oid((i+1+r.n(2))%n)))
		}
		if r.n(3) == 0 {
			g.AddEdge(oid(i), "ref", graph.NewNode(oid(r.n(n))))
		}
		if r.n(4) == 0 {
			g.AddEdge(oid(i), "score", graph.NewFloat(float64(r.n(100))/4))
		}
		if i%3 == 0 {
			g.AddEdge(oid(i), "extra", graph.NewString("e"))
		}
	}
	// One node outside every collection, reachable only through "ref":
	// paths can leave the collections the queries scan.
	g.AddNode(oid(n))
	g.AddEdge(oid(r.n(n)), "ref", graph.NewNode(oid(n)))
	return g
}

// genRichQuery builds a random-but-valid StruQL query from a seed,
// covering every condition form (membership, label and reverse paths,
// arc variables, regular path expressions, comparisons, predicates,
// negation), shuffled condition order, aggregates, multi-Skolem
// construction, arc-variable links, collections, and nested blocks.
// Every referenced variable is bound by some positive condition, so the
// query always parses and evaluates without error.
func genRichQuery(seed uint64) string {
	r := newOracleRand(seed)
	bound := []string{"x"}
	var arcVars []string
	varN := 0
	fresh := func() string { varN++; return fmt.Sprintf("v%d", varN) }

	conds := []string{r.pick("Items(x)", "Items(x)", "Items(x)", "Extra(x)")}
	binders := 1
	nConds := 1 + r.n(5)
	for i := 0; i < nConds; i++ {
		src := bound[r.n(len(bound))]
		kind := r.n(10)
		if binders >= 4 && kind < 4 {
			kind = 4 + r.n(6) // enough binders; stick to filters and negation
		}
		switch kind {
		case 0: // forward label seek
			v := fresh()
			conds = append(conds, fmt.Sprintf("%s -> %q -> %s",
				src, r.pick("id", "year", "kind", "tag", "next", "ref"), v))
			bound = append(bound, v)
			binders++
		case 1: // reverse: bound target, unbound source
			v := fresh()
			conds = append(conds, fmt.Sprintf("%s -> %q -> %s", v, r.pick("next", "ref"), src))
			bound = append(bound, v)
			binders++
		case 2: // arc variable binds the label too
			v := fresh()
			l := fmt.Sprintf("l%d", i)
			conds = append(conds, fmt.Sprintf("%s -> %s -> %s", src, l, v))
			bound = append(bound, v, l)
			arcVars = append(arcVars, l)
			binders++
		case 3: // regular path expression
			v := fresh()
			rpe := r.pick(`"next"*`, `"next"+`, `("next"|"ref")`, `"next"."tag"`,
				`"ref"?."kind"`, `~"t.*"`, `_`, `("next"."ref")*`, `"next"?`)
			conds = append(conds, fmt.Sprintf("%s -> %s -> %s", src, rpe, v))
			bound = append(bound, v)
			binders++
		case 4: // comparison against a constant
			conds = append(conds, r.pick(
				fmt.Sprintf("%s > %d", src, 1990+r.n(8)),
				fmt.Sprintf("%s <= %d", src, 1990+r.n(8)),
				fmt.Sprintf("%s != %q", src, r.pick("a", "b", "t1")),
				fmt.Sprintf("%s = %q", src, r.pick("a", "t2", "id03")),
			))
		case 5: // comparison between two bound variables
			other := bound[r.n(len(bound))]
			conds = append(conds, fmt.Sprintf("%s %s %s", src, r.pick("!=", "=", "<"), other))
		case 6: // built-in predicate
			conds = append(conds, fmt.Sprintf("%s(%s)",
				r.pick("isNode", "isAtom", "isInt", "isString"), src))
		case 7: // safe negation
			conds = append(conds, r.pick(
				fmt.Sprintf("not(%s -> %q -> nz%d)", src, r.pick("extra", "kind", "ref"), i),
				fmt.Sprintf("not(%s -> \"year\" -> nz%d, nz%d > %d)", src, i, i, 1993+r.n(4)),
				fmt.Sprintf("not(Extra(%s))", src),
			))
		case 8: // collection membership: probe a bound var or scan a new one
			if r.n(2) == 0 {
				conds = append(conds, fmt.Sprintf("Extra(%s)", src))
			} else {
				v := fresh()
				conds = append(conds, fmt.Sprintf("Extra(%s)", v))
				bound = append(bound, v)
				binders++
			}
		default: // path with a constant target
			conds = append(conds, fmt.Sprintf("%s -> \"kind\" -> %q", src, r.pick("a", "b")))
		}
	}
	// Shuffle: condition order must never change the result, and the
	// planner (or first-ready fallback) must schedule any permutation.
	for i := len(conds) - 1; i > 0; i-- {
		j := r.n(i + 1)
		conds[i], conds[j] = conds[j], conds[i]
	}

	var b strings.Builder
	b.WriteString("where ")
	b.WriteString(strings.Join(conds, ",\n      "))

	if r.n(6) == 0 && len(bound) > 1 {
		av := bound[1+r.n(len(bound)-1)]
		fn := r.pick("count", "min", "max", "sum", "avg")
		fmt.Fprintf(&b, "\naggregate %s(%s) as agg by x", fn, av)
		b.WriteString("\ncreate Agg(x)\nlink Agg(x) -> \"val\" -> agg, Agg(x) -> \"self\" -> x")
		if r.n(2) == 0 {
			b.WriteString("\ncollect Results(Agg(x))")
		}
		return b.String()
	}

	b.WriteString("\ncreate Out(x)")
	if r.n(3) == 0 {
		fmt.Fprintf(&b, ", Pair(x, %s)", bound[r.n(len(bound))])
	}
	links := []string{fmt.Sprintf("Out(x) -> \"t0\" -> %s", bound[r.n(len(bound))])}
	for k := r.n(3); k > 0; k-- {
		links = append(links, fmt.Sprintf("Out(x) -> \"t%d\" -> %s", k, bound[r.n(len(bound))]))
	}
	if len(arcVars) > 0 && r.n(2) == 0 {
		links = append(links, fmt.Sprintf("Out(x) -> %s -> x", arcVars[0]))
	}
	fmt.Fprintf(&b, "\nlink %s", strings.Join(links, ", "))
	if r.n(2) == 0 {
		b.WriteString("\ncollect Results(Out(x))")
	}
	if r.n(4) == 0 {
		fmt.Fprintf(&b, "\n{ where %s -> %q -> w create Sub(x, w) link Sub(x, w) -> \"w\" -> w }",
			bound[r.n(len(bound))], r.pick("kind", "tag", "next"))
	}
	return b.String()
}

// oracleGraph bundles one generated graph with the sources and warm
// statistics the option matrix cycles through.
type oracleGraph struct {
	seed    uint64
	plain   Source
	indexed Source
	warm    *Stats
}

func buildOracleGraph(seed uint64) *oracleGraph {
	g := genGraph(seed)
	ix := repo.NewIndexed(g)
	return &oracleGraph{seed: seed, plain: NewGraphSource(g), indexed: ix, warm: CollectStats(ix)}
}

// oracleConfigs is the number of distinct (options, source) pairs
// oracleOptions cycles through.
const oracleConfigs = 16

// oracleOptions maps a configuration index to evaluation options and a
// source: even indexes evaluate against the label-indexed repository
// (LabelStatser fast path, index-backed seeks), odd against the plain
// graph source (scan fallbacks); the option half cycles parallelism,
// planner toggles, warm statistics, and generous resource guards that
// must never trip.
func oracleOptions(i int, og *oracleGraph) (*Options, Source) {
	src := og.indexed
	if i%2 == 1 {
		src = og.plain
	}
	switch (i / 2) % 8 {
	case 0:
		return nil, src
	case 1:
		return &Options{Parallelism: 1}, src
	case 2:
		return &Options{Parallelism: 2, NoStats: true}, src
	case 3:
		return &Options{Parallelism: runtime.NumCPU(), NoReorder: true}, src
	case 4:
		return &Options{NoStats: true, NoReorder: true}, src
	case 5:
		return &Options{NoFrozen: true}, src
	case 6:
		return &Options{Parallelism: 2, NoFrozen: true, NoStats: true}, src
	default:
		return &Options{
			Parallelism:  2,
			Stats:        og.warm,
			MaxRows:      4 << 20,
			MaxNFAStates: 1 << 20,
			Deadline:     time.Now().Add(time.Hour),
		}, src
	}
}

// oracleQuerySeed spreads pair indexes across the seed space.
func oracleQuerySeed(i int) uint64 { return uint64(i)*1000003 + 7 }

// TestDifferentialOracle checks optimized ≡ naive over oraclePairs
// seeded (graph, query) pairs, cycling the option/source matrix per
// pair. oraclePairs is 10000 in the plain suite and a smoke subset
// under the race detector (see oracle_scale_test.go).
func TestDifferentialOracle(t *testing.T) {
	pairs := oraclePairs
	if testing.Short() {
		pairs = pairs / 20
		if pairs < 100 {
			pairs = 100
		}
	}
	const nGraphs = 48
	graphs := make([]*oracleGraph, nGraphs)
	fails := 0
	for i := 0; i < pairs; i++ {
		gi := i % nGraphs
		if graphs[gi] == nil {
			graphs[gi] = buildOracleGraph(uint64(gi)*7919 + 3)
		}
		og := graphs[gi]
		qsrc := genRichQuery(oracleQuerySeed(i))
		q, err := Parse(qsrc)
		if err != nil {
			t.Fatalf("pair %d: generator produced an invalid query: %v\n%s", i, err, qsrc)
		}
		want, err := NaiveEval(q, og.plain)
		if err != nil {
			t.Fatalf("pair %d (graph seed %d): naive: %v\n%s", i, og.seed, err, qsrc)
		}
		opts, src := oracleOptions(i, og)
		got, err := Eval(q, src, opts)
		if err != nil {
			t.Fatalf("pair %d (graph seed %d, config %d): optimized: %v\n%s", i, og.seed, i%oracleConfigs, err, qsrc)
		}
		if got.Rows != want.Rows || got.Graph.Dump() != want.Graph.Dump() {
			t.Errorf("pair %d (graph seed %d, config %d): optimized and naive diverged (rows %d vs %d)\nquery:\n%s",
				i, og.seed, i%oracleConfigs, got.Rows, want.Rows, qsrc)
			if fails++; fails >= 3 {
				t.Fatal("stopping after 3 divergences")
			}
		}
	}
	t.Logf("differential oracle: %d (graph, query) pairs agreed", pairs)
}

// TestDifferentialOracleFullMatrix runs a smaller pair set through EVERY
// configuration, pinning plan independence: one naive reference, twelve
// optimized runs, all byte-identical.
func TestDifferentialOracleFullMatrix(t *testing.T) {
	pairs := 96
	if testing.Short() {
		pairs = 24
	}
	for i := 0; i < pairs; i++ {
		og := buildOracleGraph(uint64(i%8)*104729 + 11)
		qsrc := genRichQuery(uint64(i)*9176553 + 1234567)
		q, err := Parse(qsrc)
		if err != nil {
			t.Fatalf("pair %d: generator produced an invalid query: %v\n%s", i, err, qsrc)
		}
		want, err := NaiveEval(q, og.plain)
		if err != nil {
			t.Fatalf("pair %d: naive: %v\n%s", i, err, qsrc)
		}
		wantDump := want.Graph.Dump()
		for c := 0; c < oracleConfigs; c++ {
			opts, src := oracleOptions(c, og)
			got, err := Eval(q, src, opts)
			if err != nil {
				t.Fatalf("pair %d config %d: optimized: %v\n%s", i, c, err, qsrc)
			}
			if got.Rows != want.Rows || got.Graph.Dump() != wantDump {
				t.Fatalf("pair %d config %d: diverged from naive (rows %d vs %d)\nquery:\n%s",
					i, c, got.Rows, want.Rows, qsrc)
			}
		}
	}
}

// FuzzDifferential feeds arbitrary query text to both evaluators over a
// fixed generated graph. A guarded first-ready probe bounds the work a
// fuzzer-crafted query may demand before the unguarded naive evaluator
// runs; queries the probe rejects (parse errors, guard trips, runtime
// construction errors) are out of the oracle's scope and skipped.
func FuzzDifferential(f *testing.F) {
	f.Add(`where Items(x) create Out(x)`)
	f.Add(`where Items(x), x -> "next"* -> y create Out(x) link Out(x) -> "r" -> y`)
	f.Add(`where Items(x), not(x -> "extra" -> z) create Out(x) collect R(Out(x))`)
	f.Add(`where Items(x), x -> "year" -> y aggregate max(y) as m by x create A(x) link A(x) -> "m" -> m`)
	f.Add(`where Items(x), x -> l -> v, isAtom(v) create Out(x) link Out(x) -> l -> v`)
	for seed := uint64(1); seed <= 5; seed++ {
		f.Add(genRichQuery(seed))
	}
	og := buildOracleGraph(42)
	f.Fuzz(func(t *testing.T, qsrc string) {
		if len(qsrc) > 300 {
			return
		}
		q, err := Parse(qsrc)
		if err != nil {
			return
		}
		probe := &Options{
			Parallelism:  1,
			NoReorder:    true, // first-ready textual order = the naive evaluator's order
			MaxRows:      50000,
			MaxNFAStates: 20000,
			Deadline:     time.Now().Add(2 * time.Second),
		}
		if _, err := Eval(q, og.indexed, probe); err != nil {
			return
		}
		want, err := NaiveEval(q, og.plain)
		if err != nil {
			t.Fatalf("naive errored where guarded optimized succeeded: %v\n%s", err, qsrc)
		}
		wantDump := want.Graph.Dump()
		for c := 0; c < 4; c++ {
			opts, src := oracleOptions(c, og)
			got, err := Eval(q, src, opts)
			if err != nil {
				t.Fatalf("config %d: optimized: %v\n%s", c, err, qsrc)
			}
			if got.Rows != want.Rows || got.Graph.Dump() != wantDump {
				t.Fatalf("config %d: optimized and naive diverged (rows %d vs %d)\nquery:\n%s",
					c, got.Rows, want.Rows, qsrc)
			}
		}
	})
}
