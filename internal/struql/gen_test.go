package struql

import (
	"runtime"
	"testing"
	"time"

	"strudel/internal/graph"
	"strudel/internal/qgen"
	"strudel/internal/repo"
)

// This file is the randomized differential oracle: seeded generators for
// data graphs and queries, and tests asserting the optimized evaluator
// (cost-based planner, indexes, caches, parallelism, guards) and the
// naive reference evaluator agree byte-for-byte on every generated
// (graph, query) pair. Seeds are plain integers so any divergence report
// is reproducible with `go test -run TestDifferentialOracle`.
//
// The generators themselves live in internal/qgen (extracted so the
// HTTP query oracle and load drivers share the exact same corpus);
// these aliases keep the historical names the tests below reference.

func genGraph(seed uint64) *graph.Graph { return qgen.Graph(seed) }

func genRichQuery(seed uint64) string { return qgen.RichQuery(seed) }

// oracleGraph bundles one generated graph with the sources and warm
// statistics the option matrix cycles through.
type oracleGraph struct {
	seed    uint64
	plain   Source
	indexed Source
	warm    *Stats
}

func buildOracleGraph(seed uint64) *oracleGraph {
	g := genGraph(seed)
	ix := repo.NewIndexed(g)
	return &oracleGraph{seed: seed, plain: NewGraphSource(g), indexed: ix, warm: CollectStats(ix)}
}

// oracleConfigs is the number of distinct (options, source) pairs
// oracleOptions cycles through.
const oracleConfigs = 16

// oracleOptions maps a configuration index to evaluation options and a
// source: even indexes evaluate against the label-indexed repository
// (LabelStatser fast path, index-backed seeks), odd against the plain
// graph source (scan fallbacks); the option half cycles parallelism,
// planner toggles, warm statistics, and generous resource guards that
// must never trip.
func oracleOptions(i int, og *oracleGraph) (*Options, Source) {
	src := og.indexed
	if i%2 == 1 {
		src = og.plain
	}
	switch (i / 2) % 8 {
	case 0:
		return nil, src
	case 1:
		return &Options{Parallelism: 1}, src
	case 2:
		return &Options{Parallelism: 2, NoStats: true}, src
	case 3:
		return &Options{Parallelism: runtime.NumCPU(), NoReorder: true}, src
	case 4:
		return &Options{NoStats: true, NoReorder: true}, src
	case 5:
		return &Options{NoFrozen: true}, src
	case 6:
		return &Options{Parallelism: 2, NoFrozen: true, NoStats: true}, src
	default:
		return &Options{
			Parallelism:  2,
			Stats:        og.warm,
			MaxRows:      4 << 20,
			MaxNFAStates: 1 << 20,
			Deadline:     time.Now().Add(time.Hour),
		}, src
	}
}

// oracleQuerySeed spreads pair indexes across the seed space.
func oracleQuerySeed(i int) uint64 { return uint64(i)*1000003 + 7 }

// TestDifferentialOracle checks optimized ≡ naive over oraclePairs
// seeded (graph, query) pairs, cycling the option/source matrix per
// pair. oraclePairs is 10000 in the plain suite and a smoke subset
// under the race detector (see oracle_scale_test.go).
func TestDifferentialOracle(t *testing.T) {
	pairs := oraclePairs
	if testing.Short() {
		pairs = pairs / 20
		if pairs < 100 {
			pairs = 100
		}
	}
	const nGraphs = 48
	graphs := make([]*oracleGraph, nGraphs)
	fails := 0
	for i := 0; i < pairs; i++ {
		gi := i % nGraphs
		if graphs[gi] == nil {
			graphs[gi] = buildOracleGraph(uint64(gi)*7919 + 3)
		}
		og := graphs[gi]
		qsrc := genRichQuery(oracleQuerySeed(i))
		q, err := Parse(qsrc)
		if err != nil {
			t.Fatalf("pair %d: generator produced an invalid query: %v\n%s", i, err, qsrc)
		}
		want, err := NaiveEval(q, og.plain)
		if err != nil {
			t.Fatalf("pair %d (graph seed %d): naive: %v\n%s", i, og.seed, err, qsrc)
		}
		opts, src := oracleOptions(i, og)
		got, err := Eval(q, src, opts)
		if err != nil {
			t.Fatalf("pair %d (graph seed %d, config %d): optimized: %v\n%s", i, og.seed, i%oracleConfigs, err, qsrc)
		}
		if got.Rows != want.Rows || got.Graph.Dump() != want.Graph.Dump() {
			t.Errorf("pair %d (graph seed %d, config %d): optimized and naive diverged (rows %d vs %d)\nquery:\n%s",
				i, og.seed, i%oracleConfigs, got.Rows, want.Rows, qsrc)
			if fails++; fails >= 3 {
				t.Fatal("stopping after 3 divergences")
			}
		}
	}
	t.Logf("differential oracle: %d (graph, query) pairs agreed", pairs)
}

// TestDifferentialOracleFullMatrix runs a smaller pair set through EVERY
// configuration, pinning plan independence: one naive reference, twelve
// optimized runs, all byte-identical.
func TestDifferentialOracleFullMatrix(t *testing.T) {
	pairs := 96
	if testing.Short() {
		pairs = 24
	}
	for i := 0; i < pairs; i++ {
		og := buildOracleGraph(uint64(i%8)*104729 + 11)
		qsrc := genRichQuery(uint64(i)*9176553 + 1234567)
		q, err := Parse(qsrc)
		if err != nil {
			t.Fatalf("pair %d: generator produced an invalid query: %v\n%s", i, err, qsrc)
		}
		want, err := NaiveEval(q, og.plain)
		if err != nil {
			t.Fatalf("pair %d: naive: %v\n%s", i, err, qsrc)
		}
		wantDump := want.Graph.Dump()
		for c := 0; c < oracleConfigs; c++ {
			opts, src := oracleOptions(c, og)
			got, err := Eval(q, src, opts)
			if err != nil {
				t.Fatalf("pair %d config %d: optimized: %v\n%s", i, c, err, qsrc)
			}
			if got.Rows != want.Rows || got.Graph.Dump() != wantDump {
				t.Fatalf("pair %d config %d: diverged from naive (rows %d vs %d)\nquery:\n%s",
					i, c, got.Rows, want.Rows, qsrc)
			}
		}
	}
}

// FuzzDifferential feeds arbitrary query text to both evaluators over a
// fixed generated graph. A guarded first-ready probe bounds the work a
// fuzzer-crafted query may demand before the unguarded naive evaluator
// runs; queries the probe rejects (parse errors, guard trips, runtime
// construction errors) are out of the oracle's scope and skipped.
func FuzzDifferential(f *testing.F) {
	f.Add(`where Items(x) create Out(x)`)
	f.Add(`where Items(x), x -> "next"* -> y create Out(x) link Out(x) -> "r" -> y`)
	f.Add(`where Items(x), not(x -> "extra" -> z) create Out(x) collect R(Out(x))`)
	f.Add(`where Items(x), x -> "year" -> y aggregate max(y) as m by x create A(x) link A(x) -> "m" -> m`)
	f.Add(`where Items(x), x -> l -> v, isAtom(v) create Out(x) link Out(x) -> l -> v`)
	for seed := uint64(1); seed <= 5; seed++ {
		f.Add(genRichQuery(seed))
	}
	og := buildOracleGraph(42)
	f.Fuzz(func(t *testing.T, qsrc string) {
		if len(qsrc) > 300 {
			return
		}
		q, err := Parse(qsrc)
		if err != nil {
			return
		}
		probe := &Options{
			Parallelism:  1,
			NoReorder:    true, // first-ready textual order = the naive evaluator's order
			MaxRows:      50000,
			MaxNFAStates: 20000,
			Deadline:     time.Now().Add(2 * time.Second),
		}
		if _, err := Eval(q, og.indexed, probe); err != nil {
			return
		}
		want, err := NaiveEval(q, og.plain)
		if err != nil {
			t.Fatalf("naive errored where guarded optimized succeeded: %v\n%s", err, qsrc)
		}
		wantDump := want.Graph.Dump()
		for c := 0; c < 4; c++ {
			opts, src := oracleOptions(c, og)
			got, err := Eval(q, src, opts)
			if err != nil {
				t.Fatalf("config %d: optimized: %v\n%s", c, err, qsrc)
			}
			if got.Rows != want.Rows || got.Graph.Dump() != wantDump {
				t.Fatalf("config %d: optimized and naive diverged (rows %d vs %d)\nquery:\n%s",
					c, got.Rows, want.Rows, qsrc)
			}
		}
	})
}
