package struql

import (
	"sort"
	"sync"

	"strudel/internal/graph"
)

// nfa is a Thompson construction over edge predicates. States are dense
// ints; transitions are either epsilon or guarded by a label predicate.
type nfa struct {
	start  int
	accept int
	eps    [][]int      // eps[s] = states reachable by epsilon from s
	trans  [][]nfaTrans // trans[s] = predicate-guarded transitions
	states int
}

type nfaTrans struct {
	pred *PathExpr // PLabel, PAny, or PRegex leaf
	to   int
}

func (p *PathExpr) matchLabel(label string) bool {
	switch p.Op {
	case PLabel:
		return p.Label == label
	case PAny:
		return true
	case PRegex:
		return p.Re.MatchString(label)
	}
	return false
}

// compileNFA builds an NFA for the path expression.
func compileNFA(p *PathExpr) *nfa {
	n := &nfa{}
	n.start = n.newState()
	n.accept = n.newState()
	n.build(p, n.start, n.accept)
	return n
}

func (n *nfa) newState() int {
	n.eps = append(n.eps, nil)
	n.trans = append(n.trans, nil)
	n.states++
	return n.states - 1
}

func (n *nfa) addEps(from, to int) { n.eps[from] = append(n.eps[from], to) }
func (n *nfa) addTrans(from int, pred *PathExpr, to int) {
	n.trans[from] = append(n.trans[from], nfaTrans{pred: pred, to: to})
}

func (n *nfa) build(p *PathExpr, from, to int) {
	switch p.Op {
	case PLabel, PAny, PRegex:
		n.addTrans(from, p, to)
	case PConcat:
		cur := from
		for i, k := range p.Kids {
			var next int
			if i == len(p.Kids)-1 {
				next = to
			} else {
				next = n.newState()
			}
			n.build(k, cur, next)
			cur = next
		}
	case PAlt:
		for _, k := range p.Kids {
			n.build(k, from, to)
		}
	case PStar:
		mid := n.newState()
		n.addEps(from, mid)
		n.addEps(mid, to)
		n.build(p.Kids[0], mid, mid)
	case PPlus:
		mid := n.newState()
		n.build(p.Kids[0], from, mid)
		n.addEps(mid, to)
		n.build(p.Kids[0], mid, mid)
	case POpt:
		n.addEps(from, to)
		n.build(p.Kids[0], from, to)
	}
}

// closure expands a state set by epsilon transitions, in place, returning
// a canonical sorted slice.
func (n *nfa) closure(states []int) []int {
	seen := make(map[int]bool, len(states))
	stack := append([]int(nil), states...)
	for _, s := range states {
		seen[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.eps[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

func (n *nfa) accepting(states []int) bool {
	for _, s := range states {
		if s == n.accept {
			return true
		}
	}
	return false
}

// stateKey canonicalizes a state set for memoization.
func stateKey(states []int) string {
	b := make([]byte, 0, len(states)*2)
	for _, s := range states {
		b = append(b, byte(s), byte(s>>8))
	}
	return string(b)
}

// pathMatcher evaluates x -> R -> y conditions against a source, with a
// per-query memo of reachable-value sets keyed by start node. The memo is
// mutex-guarded so worker goroutines of the parallel evaluator can share
// one matcher; the BFS itself runs outside the lock (a start node raced by
// two workers is computed twice, with identical deterministic results).
type pathMatcher struct {
	nfa *nfa
	src Source
	// frozen, when non-nil, replaces src.Out slice materialization with
	// in-place CSR iteration during the product BFS.
	frozen *graph.Frozen
	// maxStates, when positive, caps the product states one BFS may
	// visit before aborting with *ResourceExhausted.
	maxStates int

	mu   sync.Mutex
	memo map[graph.OID][]graph.Value
}

func newPathMatcher(p *PathExpr, src Source, frozen *graph.Frozen, maxStates int) *pathMatcher {
	return &pathMatcher{nfa: compileNFA(p), src: src, frozen: frozen, maxStates: maxStates,
		memo: make(map[graph.OID][]graph.Value)}
}

// reachableFrom is reachable for unlimited matchers, which cannot fail.
func (m *pathMatcher) reachableFrom(start graph.OID) []graph.Value {
	out, _ := m.reachable(start)
	return out
}

// reachable returns every value y such that a path from node start to
// y matches the expression, via BFS over the product of the graph and the
// NFA. If the expression matches the empty path, start itself (as a node
// value) is included. Results are deterministic (sorted by value key).
// With maxStates set, a BFS visiting more product states returns a
// *ResourceExhausted error instead of running away.
func (m *pathMatcher) reachable(start graph.OID) ([]graph.Value, error) {
	m.mu.Lock()
	got, ok := m.memo[start]
	m.mu.Unlock()
	if ok {
		return got, nil
	}
	type prodState struct {
		oid graph.OID
		key string
	}
	results := make(map[string]graph.Value)
	initial := m.nfa.closure([]int{m.nfa.start})
	if m.nfa.accepting(initial) {
		v := graph.NewNode(start)
		results[v.Key()] = v
	}
	visited := map[prodState][]int{}
	startPS := prodState{oid: start, key: stateKey(initial)}
	visited[startPS] = initial
	queue := []prodState{startPS}
	var exhausted *ResourceExhausted
	for len(queue) > 0 && exhausted == nil {
		cur := queue[0]
		queue = queue[1:]
		states := visited[cur]
		visit := func(label string, to graph.Value) bool {
			// Union of closures of all states reachable by this label.
			var nextSet []int
			seen := map[int]bool{}
			for _, s := range states {
				for _, tr := range m.nfa.trans[s] {
					if tr.pred.matchLabel(label) && !seen[tr.to] {
						seen[tr.to] = true
						nextSet = append(nextSet, tr.to)
					}
				}
			}
			if len(nextSet) == 0 {
				return true
			}
			nextSet = m.nfa.closure(nextSet)
			if m.nfa.accepting(nextSet) {
				results[to.Key()] = to
			}
			if to.IsNode() {
				ps := prodState{oid: to.OID(), key: stateKey(nextSet)}
				if _, ok := visited[ps]; !ok {
					if m.maxStates > 0 && len(visited) >= m.maxStates {
						exhausted = &ResourceExhausted{Limit: LimitNFAStates,
							Used: len(visited) + 1, Max: m.maxStates}
						return false
					}
					visited[ps] = nextSet
					queue = append(queue, ps)
				}
			}
			return true
		}
		if m.frozen != nil {
			m.frozen.ForEachOut(cur.oid, visit)
		} else {
			for _, e := range m.src.Out(cur.oid) {
				if !visit(e.Label, e.To) {
					break
				}
			}
		}
	}
	if exhausted != nil {
		return nil, exhausted
	}
	out := make([]graph.Value, 0, len(results))
	for _, v := range results {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	m.mu.Lock()
	m.memo[start] = out
	m.mu.Unlock()
	return out, nil
}

// matches reports whether a path from start to target matches.
func (m *pathMatcher) matches(start graph.OID, target graph.Value) (bool, error) {
	vs, err := m.reachable(start)
	if err != nil {
		return false, err
	}
	for _, v := range vs {
		if v == target {
			return true, nil
		}
	}
	return false, nil
}

// singleLabel returns (label, true) when the whole expression is one
// literal label — the common case the planner turns into an indexed edge
// scan.
func singleLabel(p *PathExpr) (string, bool) {
	if p.Op == PLabel {
		return p.Label, true
	}
	return "", false
}
