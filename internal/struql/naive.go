package struql

import (
	"fmt"
	"sort"
	"strings"

	"strudel/internal/graph"
)

// This file is the naive reference evaluator: a direct transcription of
// StruQL's declarative semantics, deliberately free of everything the
// optimized evaluator does for speed — no cost-based ordering, no plan
// or matcher caches, no indexes beyond the Source's basic accessors, no
// parallelism, no resource guards. Regular path expressions are matched
// by set-based recursion over the AST instead of a product automaton.
// It exists to be differentially tested against Eval: the two
// implementations share only the Source interface, the value model
// (graph.Equiv/Compare), the built-in predicate table, and the Skolem
// environment — the specification, not the machinery.

// NaiveEval evaluates a query against a source with nested-loop
// reference semantics and a fresh Skolem environment. Results are
// identical to Eval's: same graph, same row counts, same Skolem OIDs.
func NaiveEval(q *Query, src Source) (*Result, error) {
	return NaiveEvalWithEnv(q, src, NewSkolemEnv())
}

// NaiveEvalWithEnv is NaiveEval with a caller-provided Skolem
// environment, for composed-query comparison.
func NaiveEvalWithEnv(q *Query, src Source, env *SkolemEnv) (*Result, error) {
	n := &naiveCtx{src: src, env: env, out: graph.New()}
	for _, blk := range q.Blocks {
		if err := n.block(blk, naiveUnit()); err != nil {
			return nil, err
		}
	}
	return &Result{Graph: n.out, Rows: n.rows}, nil
}

type naiveCtx struct {
	src  Source
	env  *SkolemEnv
	out  *graph.Graph
	rows int
}

// naiveUnit is the unit relation.
func naiveUnit() *Bindings { return &Bindings{Rows: [][]graph.Value{{}}} }

func (n *naiveCtx) block(blk *Block, parent *Bindings) error {
	b, err := n.where(blk.Where, parent)
	if err != nil {
		return err
	}
	if len(blk.Aggregate) > 0 {
		b, err = n.aggregate(blk, b)
		if err != nil {
			return err
		}
	}
	n.rows += len(b.Rows)
	if err := n.construct(blk, b); err != nil {
		return err
	}
	for _, nb := range blk.Nested {
		if err := n.block(nb, b); err != nil {
			return err
		}
	}
	return nil
}

// where extends the parent relation by the conditions, in repeated
// textual passes: each pass applies every not-yet-applied condition
// that is ready (filters and negations wait for their variables), until
// all are applied. The result is canonicalized — deduplicated and
// sorted by row key — so downstream construction visits rows in the
// same order the optimized evaluator does, whatever order either
// implementation produced them in.
func (n *naiveCtx) where(conds []Cond, parent *Bindings) (*Bindings, error) {
	// Output variable order: parent variables, then new variables sorted.
	newVars := map[string]bool{}
	for _, c := range conds {
		c.boundVars(newVars)
	}
	vars := append([]string(nil), parent.Vars...)
	have := map[string]bool{}
	for _, v := range vars {
		have[v] = true
	}
	extras := make([]string, 0, len(newVars))
	for v := range newVars {
		if !have[v] {
			extras = append(extras, v)
		}
	}
	sort.Strings(extras)
	vars = append(vars, extras...)

	b := &Bindings{Vars: vars}
	for _, prow := range parent.Rows {
		row := make([]graph.Value, len(vars))
		copy(row, prow)
		b.Rows = append(b.Rows, row)
	}
	if len(conds) == 0 {
		return b, nil
	}

	// bindable is every variable some condition in this clause binds
	// (plus the inherited ones): the set readiness checks consult.
	bindable := map[string]bool{}
	for _, v := range parent.Vars {
		bindable[v] = true
	}
	for _, c := range conds {
		c.boundVars(bindable)
	}
	bound := map[string]bool{}
	for _, v := range parent.Vars {
		bound[v] = true
	}
	done := make([]bool, len(conds))
	remaining := len(conds)
	for remaining > 0 {
		progressed := false
		for i, c := range conds {
			if done[i] || !n.ready(c, bound, bindable) {
				continue
			}
			var err error
			b, err = n.apply(c, b)
			if err != nil {
				return nil, err
			}
			c.boundVars(bound)
			done[i] = true
			remaining--
			progressed = true
		}
		if !progressed {
			return nil, &ParseError{Line: conds[0].condLine(),
				Msg: "cannot schedule conditions: a filter refers to variables no positive condition binds"}
		}
	}
	naiveCanon(b)
	return b, nil
}

// ready reports whether a condition can run given the bound variables:
// binding conditions always can; filters need their variables; a
// negation waits for every referenced variable the clause can bind.
func (n *naiveCtx) ready(c Cond, bound, bindable map[string]bool) bool {
	tb := func(t Term) bool { return !t.IsVar() || bound[t.Var] }
	switch c := c.(type) {
	case *PredCond:
		return tb(c.Arg)
	case *CmpCond:
		return tb(c.L) && tb(c.R)
	case *NotCond:
		refs := map[string]bool{}
		c.refVars(refs)
		for v := range refs {
			if bindable[v] && !bound[v] {
				return false
			}
		}
		return true
	}
	return true
}

// apply runs one condition over every row by plain nested loops.
func (n *naiveCtx) apply(c Cond, b *Bindings) (*Bindings, error) {
	out := &Bindings{Vars: b.Vars}
	for _, row := range b.Rows {
		rows, err := n.applyRow(c, b, row)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, rows...)
	}
	return out, nil
}

func (n *naiveCtx) applyRow(c Cond, b *Bindings, row []graph.Value) ([][]graph.Value, error) {
	var out [][]graph.Value
	switch c := c.(type) {
	case *MemberCond:
		vi := b.Index(c.Var)
		v := row[vi]
		for _, m := range n.src.Collection(c.Coll) {
			if !v.IsNull() && (!v.IsNode() || v.OID() != m) {
				continue
			}
			nr := cloneRow(row)
			nr[vi] = graph.NewNode(m)
			out = append(out, nr)
		}
	case *PredCond:
		v, known := resolveTerm(c.Arg, b, row)
		if known && builtinPreds[c.Name](v) {
			out = append(out, row)
		}
	case *CmpCond:
		l, lk := resolveTerm(c.L, b, row)
		r, rk := resolveTerm(c.R, b, row)
		if lk && rk && naiveCmp(c.Op, l, r) {
			out = append(out, row)
		}
	case *NotCond:
		seed := &Bindings{}
		var srow []graph.Value
		for i, v := range b.Vars {
			if !row[i].IsNull() {
				seed.Vars = append(seed.Vars, v)
				srow = append(srow, row[i])
			}
		}
		seed.Rows = [][]graph.Value{srow}
		sb, err := n.where(c.Conds, seed)
		if err != nil {
			return nil, err
		}
		if len(sb.Rows) == 0 {
			out = append(out, row)
		}
	case *EdgeCond:
		fi, ti := termIndex(c.From, b), termIndex(c.To, b)
		li := b.Index(c.LabelVar)
		from, _ := resolveTerm(c.From, b, row)
		for _, oid := range n.src.Nodes() {
			if !from.IsNull() && (!from.IsNode() || from.OID() != oid) {
				continue
			}
			for _, e := range n.src.Out(oid) {
				if !termMatches(c.To, e.To) {
					continue
				}
				nr := cloneRow(row)
				if bindIfConsistent(nr, fi, graph.NewNode(e.From)) &&
					bindIfConsistent(nr, li, graph.NewString(e.Label)) &&
					bindIfConsistent(nr, ti, e.To) {
					out = append(out, nr)
				}
			}
		}
	case *PathCond:
		fi, ti := termIndex(c.From, b), termIndex(c.To, b)
		from, fromKnown := resolveTerm(c.From, b, row)
		var starts []graph.Value
		if fromKnown {
			starts = []graph.Value{from}
		} else {
			for _, oid := range n.src.Nodes() {
				starts = append(starts, graph.NewNode(oid))
			}
		}
		for _, s := range starts {
			if !s.IsNode() {
				continue // paths start at nodes (active-domain semantics)
			}
			for _, target := range n.pathTargets(c.Path, s) {
				if !termMatches(c.To, target) {
					continue
				}
				nr := cloneRow(row)
				if bindIfConsistent(nr, fi, s) && bindIfConsistent(nr, ti, target) {
					out = append(out, nr)
				}
			}
		}
	default:
		return nil, fmt.Errorf("struql: unknown condition type %T", c)
	}
	return out, nil
}

// termMatches reports whether a candidate value is consistent with a
// constant term; variable terms are handled by bindIfConsistent.
func termMatches(t Term, candidate graph.Value) bool {
	return t.IsVar() || t.Const == candidate
}

func naiveCmp(op CmpOp, l, r graph.Value) bool {
	switch op {
	case CmpEq:
		return graph.Equiv(l, r)
	case CmpNeq:
		return !graph.Equiv(l, r)
	case CmpLt:
		return graph.Compare(l, r) < 0
	case CmpLe:
		return graph.Compare(l, r) <= 0
	case CmpGt:
		return graph.Compare(l, r) > 0
	case CmpGe:
		return graph.Compare(l, r) >= 0
	}
	return false
}

// pathTargets returns every value reachable from the start node by a
// path matching the expression, by set-based recursion over the AST. If
// the expression matches the empty path the start itself is included.
func (n *naiveCtx) pathTargets(p *PathExpr, start graph.Value) []graph.Value {
	set := n.matchSet(p, valueSet{start.Key(): start})
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]graph.Value, len(keys))
	for i, k := range keys {
		out[i] = set[k]
	}
	return out
}

type valueSet map[string]graph.Value

// matchSet computes the set of values reachable from the given set via
// one path matching p. Traversal continues only from node values —
// atoms have no outgoing edges.
func (n *naiveCtx) matchSet(p *PathExpr, from valueSet) valueSet {
	out := valueSet{}
	switch p.Op {
	case PLabel, PAny, PRegex:
		for _, v := range from {
			if !v.IsNode() {
				continue
			}
			for _, e := range n.src.Out(v.OID()) {
				if p.matchLabel(e.Label) {
					out[e.To.Key()] = e.To
				}
			}
		}
	case PConcat:
		cur := from
		for _, k := range p.Kids {
			cur = n.matchSet(k, cur)
		}
		return cur
	case PAlt:
		for _, k := range p.Kids {
			for key, v := range n.matchSet(k, from) {
				out[key] = v
			}
		}
	case PStar:
		return n.closureOf(p.Kids[0], from)
	case PPlus:
		return n.closureStrict(p.Kids[0], from)
	case POpt:
		for key, v := range from {
			out[key] = v
		}
		for key, v := range n.matchSet(p.Kids[0], from) {
			out[key] = v
		}
	}
	return out
}

// closureOf is the reflexive-transitive closure of one step of p: the
// from set plus everything reachable by repeating p.
func (n *naiveCtx) closureOf(p *PathExpr, from valueSet) valueSet {
	out := valueSet{}
	frontier := valueSet{}
	for k, v := range from {
		out[k] = v
		frontier[k] = v
	}
	for len(frontier) > 0 {
		next := valueSet{}
		for k, v := range n.matchSet(p, frontier) {
			if _, seen := out[k]; !seen {
				out[k] = v
				next[k] = v
			}
		}
		frontier = next
	}
	return out
}

// closureStrict is the transitive closure: at least one step of p.
func (n *naiveCtx) closureStrict(p *PathExpr, from valueSet) valueSet {
	first := n.matchSet(p, from)
	return n.closureOf(p, first)
}

// naiveCanon deduplicates and sorts the relation by row key — the same
// canonical order the optimized evaluator's dedup step establishes, so
// construction (and therefore Skolem collision-suffix allocation)
// proceeds identically in both implementations.
func naiveCanon(b *Bindings) {
	type keyed struct {
		key string
		row []graph.Value
	}
	keyedRows := make([]keyed, len(b.Rows))
	for i, row := range b.Rows {
		var kb strings.Builder
		for _, v := range row {
			kb.WriteString(v.Key())
			kb.WriteByte(0)
		}
		keyedRows[i] = keyed{key: kb.String(), row: row}
	}
	sort.Slice(keyedRows, func(i, j int) bool { return keyedRows[i].key < keyedRows[j].key })
	out := b.Rows[:0]
	for i, kr := range keyedRows {
		if i == 0 || kr.key != keyedRows[i-1].key {
			out = append(out, kr.row)
		}
	}
	b.Rows = out
}

// aggregate folds the relation by the block's grouping variables, with
// the same distinct-value semantics as the optimized evaluator: count
// counts distinct values, sum/avg fold numeric readings in sorted key
// order, min/max pick by the dynamic-coercion order.
func (n *naiveCtx) aggregate(blk *Block, b *Bindings) (*Bindings, error) {
	byIdx := make([]int, len(blk.AggBy))
	for i, v := range blk.AggBy {
		byIdx[i] = b.Index(v)
		if byIdx[i] < 0 {
			return nil, fmt.Errorf("struql: line %d: grouping variable %s unbound", blk.Line, v)
		}
	}
	argIdx := make([]int, len(blk.Aggregate))
	for i, a := range blk.Aggregate {
		argIdx[i] = b.Index(a.Arg)
		if argIdx[i] < 0 {
			return nil, fmt.Errorf("struql: line %d: aggregated variable %s unbound", a.Pos, a.Arg)
		}
	}
	type group struct {
		key  []graph.Value
		rows [][]graph.Value
	}
	groups := map[string]*group{}
	for _, row := range b.Rows {
		key := make([]graph.Value, len(byIdx))
		var kb strings.Builder
		for i, bi := range byIdx {
			key[i] = row[bi]
			kb.WriteString(row[bi].Key())
			kb.WriteByte(0)
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = &group{key: key}
			groups[k] = g
		}
		g.rows = append(g.rows, row)
	}
	order := make([]string, 0, len(groups))
	for k := range groups {
		order = append(order, k)
	}
	sort.Strings(order)
	out := &Bindings{Vars: append([]string(nil), blk.AggBy...)}
	for _, a := range blk.Aggregate {
		out.Vars = append(out.Vars, a.As)
	}
	for _, k := range order {
		g := groups[k]
		row := append([]graph.Value(nil), g.key...)
		for i, a := range blk.Aggregate {
			row = append(row, naiveFold(a.Fn, argIdx[i], g.rows))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// naiveFold computes one aggregate over a group's distinct values,
// folding in sorted key order exactly as the optimized foldAgg does.
func naiveFold(fn AggFn, argIdx int, rows [][]graph.Value) graph.Value {
	distinct := map[string]graph.Value{}
	for _, row := range rows {
		v := row[argIdx]
		distinct[v.Key()] = v
	}
	if fn == AggCount {
		return graph.NewInt(int64(len(distinct)))
	}
	keys := make([]string, 0, len(distinct))
	for k := range distinct {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var best graph.Value
	sum := 0.0
	allInt := true
	first := true
	for _, k := range keys {
		v := distinct[k]
		switch fn {
		case AggSum, AggAvg:
			switch v.Kind() {
			case graph.KindInt:
				sum += float64(v.Int())
			case graph.KindFloat:
				sum += v.Float()
				allInt = false
			default:
				if f, ok := numericText(v); ok {
					sum += f
					allInt = false
				}
			}
		case AggMin:
			if first || graph.Compare(v, best) < 0 {
				best = v
			}
		case AggMax:
			if first || graph.Compare(v, best) > 0 {
				best = v
			}
		}
		first = false
	}
	switch fn {
	case AggSum:
		if allInt {
			return graph.NewInt(int64(sum))
		}
		return graph.NewFloat(sum)
	case AggAvg:
		if len(distinct) == 0 {
			return graph.NewFloat(0)
		}
		return graph.NewFloat(sum / float64(len(distinct)))
	}
	return best
}

// construct runs the block's construction clauses once per row —
// the same Skolemized semantics as the optimized evaluator, shared
// through the SkolemEnv, which is the OID-naming specification.
func (n *naiveCtx) construct(blk *Block, b *Bindings) error {
	for _, row := range b.Rows {
		skolemOID := func(st SkolemTerm) (graph.OID, error) {
			args := make([]graph.Value, len(st.Args))
			for i, a := range st.Args {
				vi := b.Index(a)
				if vi < 0 || row[vi].IsNull() {
					return "", fmt.Errorf("struql: line %d: Skolem argument %s unbound at construction", st.Pos, a)
				}
				args[i] = row[vi]
			}
			return n.env.OID(st.Fn, args), nil
		}
		resolveLink := func(t LinkTerm, pos int) (graph.Value, error) {
			if t.Skolem != nil {
				oid, err := skolemOID(*t.Skolem)
				if err != nil {
					return graph.Null, err
				}
				n.out.AddNode(oid)
				return graph.NewNode(oid), nil
			}
			v, known := resolveTerm(*t.Term, b, row)
			if !known {
				return graph.Null, fmt.Errorf("struql: line %d: variable %s unbound at construction", pos, t.Term.Var)
			}
			return v, nil
		}
		for _, st := range blk.Create {
			oid, err := skolemOID(st)
			if err != nil {
				return err
			}
			n.out.AddNode(oid)
		}
		for _, le := range blk.Link {
			fromOID, err := skolemOID(le.From)
			if err != nil {
				return err
			}
			n.out.AddNode(fromOID)
			label := le.Label.Lit
			if le.Label.IsVar {
				vi := b.Index(le.Label.Var)
				if vi < 0 || row[vi].IsNull() {
					return fmt.Errorf("struql: line %d: arc variable %s unbound at construction", le.Pos, le.Label.Var)
				}
				label = row[vi].Text()
			}
			to, err := resolveLink(le.To, le.Pos)
			if err != nil {
				return err
			}
			n.out.AddEdge(fromOID, label, to)
		}
		for _, ce := range blk.Collect {
			v, err := resolveLink(ce.Target, ce.Pos)
			if err != nil {
				return err
			}
			if !v.IsNode() {
				return fmt.Errorf("struql: line %d: collect %s: collections contain objects, not the atom %s",
					ce.Pos, ce.Coll, v)
			}
			n.out.AddToCollection(ce.Coll, v.OID())
		}
	}
	return nil
}
