package struql

import (
	"runtime"
	"sync"

	"strudel/internal/graph"
	"strudel/internal/obs"
)

// minParallelRows is the relation size below which the per-row operators
// stay sequential: goroutine fan-out costs more than it saves on tiny
// inputs, and small relations dominate nested not(...) sub-evaluations.
const minParallelRows = 64

// parallelism resolves the configured worker count: 0 means one worker
// per available CPU, 1 the sequential path, n>1 exactly n workers.
func (o *Options) parallelism() int {
	if o == nil || o.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// chunkBounds partitions n items into at most workers contiguous chunks of
// near-equal size, returned as [lo,hi) index pairs in input order.
func chunkBounds(n, workers int) [][2]int {
	if workers > n {
		workers = n
	}
	bounds := make([][2]int, 0, workers)
	lo := 0
	for w := 0; w < workers; w++ {
		size := (n - lo) / (workers - w)
		bounds = append(bounds, [2]int{lo, lo + size})
		lo += size
	}
	return bounds
}

// cancelCheckRows bounds how many rows one operator processes between
// context polls when a request context is attached: it is the worst-case
// cancellation latency in rows, small enough that even a slow (e.g.
// fault-injected) source stops within a few dozen accesses.
const cancelCheckRows = 64

// rowMap applies fn to contiguous chunks of rows on a worker pool and
// concatenates the chunk outputs in input order, which keeps every
// operator's output deterministic: each chunk preserves its rows' relative
// order, and chunks are reassembled exactly as partitioned. fn receives
// the chunk index (so callers can keep per-worker state) and must not
// touch rows outside its chunk. With one worker (or a small relation) it
// degenerates to a single in-place call.
//
// When the evaluation carries a request context, each worker processes its
// chunk in batches of cancelCheckRows rows, polling the context between
// batches; batch outputs concatenate in order, so cancellation support
// never changes the result.
func (ctx *evalCtx) rowMap(rows [][]graph.Value,
	fn func(worker int, chunk [][]graph.Value) ([][]graph.Value, error)) ([][]graph.Value, error) {
	if ctx.polled() {
		inner := fn
		fn = func(worker int, chunk [][]graph.Value) ([][]graph.Value, error) {
			var out [][]graph.Value
			for lo := 0; lo < len(chunk) || lo == 0; lo += cancelCheckRows {
				if err := ctx.cancelled(); err != nil {
					return nil, err
				}
				hi := min(lo+cancelCheckRows, len(chunk))
				part, err := inner(worker, chunk[lo:hi])
				if err != nil {
					return nil, err
				}
				if lo == 0 && hi == len(chunk) {
					return part, nil
				}
				out = append(out, part...)
			}
			return out, nil
		}
	}
	if ctx.par <= 1 || len(rows) < minParallelRows {
		ctx.metrics.RecordRowMap(1)
		return fn(0, rows)
	}
	bounds := chunkBounds(len(rows), ctx.par)
	ctx.metrics.RecordRowMap(len(bounds))
	outs := make([][][]graph.Value, len(bounds))
	errs := make([]error, len(bounds))
	var wg sync.WaitGroup
	for i, b := range bounds {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			outs[i], errs[i] = fn(i, rows[lo:hi])
		}(i, b[0], b[1])
	}
	wg.Wait()
	// The first failing chunk in input order decides the error, so error
	// reporting does not depend on goroutine scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	merged := make([][]graph.Value, 0, total)
	for _, o := range outs {
		merged = append(merged, o...)
	}
	return merged, nil
}

// matcherCache shares compiled path matchers — each holding one NFA and
// its reachability memo — across blocks and across worker goroutines.
// Matchers are keyed by the path expression's textual form, so the same
// expression written in two blocks compiles its NFA once.
type matcherCache struct {
	mu sync.Mutex
	m  map[string]*pathMatcher
}

func newMatcherCache() *matcherCache { return &matcherCache{m: make(map[string]*pathMatcher)} }

func (c *matcherCache) get(p *PathExpr, src Source, frozen *graph.Frozen, maxStates int, metrics *obs.EvalMetrics) *pathMatcher {
	key := p.String()
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.m[key]
	metrics.RecordNFA(ok)
	if !ok {
		m = newPathMatcher(p, src, frozen, maxStates)
		c.m[key] = m
	}
	return m
}
