package struql

import (
	"strings"
	"testing"

	"strudel/internal/graph"
)

// fig3Query is a reconstruction of the Fig. 3 site-definition query for
// the example homepage site.
const fig3Query = `
// Root and abstracts pages (lines 1-2 of Fig. 3).
create RootPage(), AbstractsPage()
link RootPage() -> "Abstracts" -> AbstractsPage()

// Per-publication presentation objects (lines 7-13).
where Publications(x)
create AbstractPage(x), PaperPresentation(x)
link PaperPresentation(x) -> "Abstract" -> AbstractPage(x),
     AbstractsPage() -> "Abstract" -> AbstractPage(x)
{
  // Copy every attribute of x into both presentation objects (lines 10-11).
  where x -> l -> v
  link AbstractPage(x) -> l -> v,
       PaperPresentation(x) -> l -> v
}
{
  // A page for each publication year (lines 15-24).
  where x -> "year" -> y
  create YearPage(y)
  link YearPage(y) -> "Year" -> y,
       YearPage(y) -> "Paper" -> PaperPresentation(x),
       RootPage() -> "YearPage" -> YearPage(y)
}
{
  // A page for each publication category.
  where x -> "category" -> c
  create CategoryPage(c)
  link CategoryPage(c) -> "Category" -> c,
       CategoryPage(c) -> "Paper" -> PaperPresentation(x),
       RootPage() -> "CategoryPage" -> CategoryPage(c)
}
`

func TestParseFig3(t *testing.T) {
	q, err := Parse(fig3Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(q.Blocks))
	}
	first := q.Blocks[0]
	if len(first.Where) != 0 || len(first.Create) != 2 || len(first.Link) != 1 {
		t.Errorf("first block shape: where=%d create=%d link=%d", len(first.Where), len(first.Create), len(first.Link))
	}
	second := q.Blocks[1]
	if len(second.Where) != 1 || len(second.Nested) != 3 {
		t.Errorf("second block shape: where=%d nested=%d", len(second.Where), len(second.Nested))
	}
	fns := q.SkolemFunctions()
	want := []string{"AbstractPage", "AbstractsPage", "CategoryPage", "PaperPresentation", "RootPage", "YearPage"}
	if strings.Join(fns, ",") != strings.Join(want, ",") {
		t.Errorf("SkolemFunctions = %v, want %v", fns, want)
	}
	if got := q.LinkClauseCount(); got != 11 {
		t.Errorf("LinkClauseCount = %d, want 11", got)
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	q := MustParse(fig3Query)
	printed := q.String()
	q2, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nprinted:\n%s", err, printed)
	}
	if q2.String() != printed {
		t.Errorf("printing is not a fixed point:\n--- first\n%s\n--- second\n%s", printed, q2.String())
	}
}

func TestParseArcVariableVsPathExpr(t *testing.T) {
	q := MustParse(`where Pubs(x), x -> l -> v, x -> "year" -> y create P(x) link P(x) -> l -> v`)
	blk := q.Blocks[0]
	if _, ok := blk.Where[1].(*EdgeCond); !ok {
		t.Errorf("bare identifier middle should be an arc variable, got %T", blk.Where[1])
	}
	pc, ok := blk.Where[2].(*PathCond)
	if !ok {
		t.Fatalf("quoted middle should be a path condition, got %T", blk.Where[2])
	}
	if lbl, ok := singleLabel(pc.Path); !ok || lbl != "year" {
		t.Errorf("path = %v, want single label year", pc.Path)
	}
	if !blk.Link[0].Label.IsVar || blk.Link[0].Label.Var != "l" {
		t.Errorf("link label = %+v, want arc variable l", blk.Link[0].Label)
	}
}

func TestParseRegularPathExpressions(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical printed form of the path
	}{
		{`x -> * -> y`, `_*`},
		{`x -> _ -> y`, `_`},
		{`x -> "a"."b" -> y`, `"a"."b"`},
		{`x -> ("a"|"b")* -> y`, `("a"|"b")*`},
		{`x -> "a"+ -> y`, `"a"+`},
		{`x -> "a"? -> y`, `"a"?`},
		{`x -> ~"is.*" -> y`, `~"is.*"`},
		{`x -> "a".("b"|"c")."d"* -> y`, `"a".("b"|"c")."d"*`},
		{`x -> "a"|"b"."c" -> y`, `"a"|"b"."c"`},
	}
	for _, c := range cases {
		q, err := Parse("where C(x), " + c.src + " create N(x)")
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		pc, ok := q.Blocks[0].Where[1].(*PathCond)
		if !ok {
			t.Errorf("Parse(%q): not a path cond: %T", c.src, q.Blocks[0].Where[1])
			continue
		}
		if got := pc.Path.String(); got != c.want {
			t.Errorf("Parse(%q): path = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseComparisons(t *testing.T) {
	q := MustParse(`where Pubs(x), x -> "year" -> y, y > 1995, y != 1997, y <= 2000 create P(x)`)
	ops := []CmpOp{CmpGt, CmpNeq, CmpLe}
	for i, ci := range []int{2, 3, 4} {
		c, ok := q.Blocks[0].Where[ci].(*CmpCond)
		if !ok || c.Op != ops[i] {
			t.Errorf("cond %d = %v, want op %v", ci, q.Blocks[0].Where[ci], ops[i])
		}
	}
}

func TestParseBuiltinVsCollection(t *testing.T) {
	q := MustParse(`where Root(p), isImageFile(v), p -> l -> v create N(p)`)
	if _, ok := q.Blocks[0].Where[0].(*MemberCond); !ok {
		t.Errorf("Root(p) should be membership, got %T", q.Blocks[0].Where[0])
	}
	if _, ok := q.Blocks[0].Where[1].(*PredCond); !ok {
		t.Errorf("isImageFile(v) should be builtin, got %T", q.Blocks[0].Where[1])
	}
}

func TestParseNot(t *testing.T) {
	q := MustParse(`where Root(p), p -> l -> v, not(isImageFile(v), v = "x") create N(p)`)
	nc, ok := q.Blocks[0].Where[2].(*NotCond)
	if !ok {
		t.Fatalf("cond = %T, want NotCond", q.Blocks[0].Where[2])
	}
	if len(nc.Conds) != 2 {
		t.Errorf("not() holds %d conds, want 2", len(nc.Conds))
	}
}

func TestParseConstants(t *testing.T) {
	q := MustParse(`where C(x), x -> "year" -> 1997, x -> "ok" -> true, x -> "w" -> 2.5, x -> "oid" -> &other, x -> "s" -> "str" create N(x)`)
	consts := []graph.Value{
		graph.NewInt(1997), graph.NewBool(true), graph.NewFloat(2.5),
		graph.NewNode("other"), graph.NewString("str"),
	}
	for i, want := range consts {
		pc := q.Blocks[0].Where[i+1].(*PathCond)
		if pc.To.IsVar() || pc.To.Const != want {
			t.Errorf("cond %d target = %v, want %v", i+1, pc.To, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, frag string
	}{
		{``, "empty query"},
		{`where`, "expected term"},
		{`where C(x) link x -> "a" -> y`, "link source must be a Skolem term"},
		{`where C(x) create N(y)`, "not bound"},
		{`where C(x) link N(x) -> l -> x`, "arc variable l in link clause is not bound"},
		{`where C(x), y > 1 create N(x)`, "never bound"},
		{`where C(x) create N(x), N(x, x)`, "arities"},
		{`where C(x), x -> ~"(" -> y create N(x)`, "bad label regexp"},
		{`where C(x) create N(x) { where x -> l -> v`, "unterminated nested block"},
		{`where C("lit") create N()`, "requires a variable"},
		{`where C(x) collect Out(v)`, "not bound"},
		{`where C(x) create N(x) junk`, "expected"},
		{`where C(x), x -> -> y create N(x)`, "expected path expression"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): want error with %q, got nil", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q): error %q, want fragment %q", c.src, err, c.frag)
		}
	}
}

func TestParseCollectMultiple(t *testing.T) {
	q := MustParse(`where C(x) create N(x) collect Roots(N(x)), Others(x)`)
	cc := q.Blocks[0].Collect
	if len(cc) != 2 || cc[0].Coll != "Roots" || !cc[0].Target.IsSkolem() || cc[1].Coll != "Others" {
		t.Errorf("collect = %v", cc)
	}
}

func TestParseCommentsBothStyles(t *testing.T) {
	q := MustParse("// slash comment\n# hash comment\nwhere C(x) // tail\ncreate N(x)\n")
	if len(q.Blocks) != 1 {
		t.Errorf("blocks = %d", len(q.Blocks))
	}
}

func TestAnalyzeNestedInheritsBindings(t *testing.T) {
	// x is bound in the parent; the nested block may use it.
	if _, err := Parse(`where C(x) create P(x) { where x -> "a" -> y create Q(y) link Q(y) -> "p" -> P(x) }`); err != nil {
		t.Errorf("nested binding inheritance failed: %v", err)
	}
	// z is not bound anywhere.
	if _, err := Parse(`where C(x) create P(x) { where x -> "a" -> y create Q(z) }`); err == nil {
		t.Error("unbound nested Skolem arg should fail analysis")
	}
}

func TestLinkClauseCountNested(t *testing.T) {
	q := MustParse(fig3Query)
	if q.LinkClauseCount() != 11 {
		t.Errorf("LinkClauseCount = %d", q.LinkClauseCount())
	}
}

func TestErrorsIncludeLine(t *testing.T) {
	_, err := Parse("where C(x)\ncreate N(y)")
	var pe *ParseError
	if !asParseError(err, &pe) {
		t.Fatalf("err = %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("line = %d, want 2", pe.Line)
	}
}

func asParseError(err error, out **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*out = pe
	}
	return ok
}
