package struql

import (
	"sync"

	"strudel/internal/obs"
)

// LabelStat summarizes one edge label's selectivity: how many edges
// carry it, how many distinct nodes it leaves from, and how many
// distinct values it points at. The planner derives fan-out (Count /
// Sources), fan-in (Count / Targets), and seed sizes from it.
type LabelStat struct {
	// Count is the number of edges carrying the label.
	Count int
	// Sources is the number of distinct source nodes with at least one
	// edge carrying the label.
	Sources int
	// Targets is the number of distinct values the label points at.
	Targets int
}

// LabelStatser is the optional fast path for per-label statistics: a
// source that already indexes its attribute extents (the repository)
// can answer without a scan. Sources that do not implement it are
// scanned once per label through EdgesLabeled, and the result cached.
type LabelStatser interface {
	// LabelStats returns the edge count, distinct source count, and
	// distinct target count of one label.
	LabelStats(label string) (count, sources, targets int)
}

// Stats holds the selectivity statistics the cost-based planner
// consults: graph totals eagerly, per-label selectivities lazily (only
// labels a query actually mentions are ever computed). A Stats is safe
// for concurrent use and can be shared across evaluations of the same
// source through Options.Stats — the "warm statistics" path of
// experiment E14.
type Stats struct {
	src Source

	// NumNodes and NumEdges are the graph totals, collected eagerly.
	NumNodes int
	NumEdges int
	// AvgDeg is the mean out-degree plus one, the uniform fallback
	// estimate for conditions without a usable label statistic.
	AvgDeg float64

	mu     sync.Mutex
	labels map[string]LabelStat
	// metrics counts cold per-label computations (nil disables).
	metrics *obs.EvalMetrics
}

// CollectStats prepares statistics over src. Graph totals are read
// immediately (O(1) on every Source implementation); per-label
// statistics are computed on first use.
func CollectStats(src Source) *Stats {
	return &Stats{
		src:      src,
		NumNodes: src.NumNodes(),
		NumEdges: src.NumEdges(),
		AvgDeg:   avgDegree(src),
		labels:   make(map[string]LabelStat),
	}
}

// Label returns the statistics for one edge label, computing and
// caching them on first request. Sources implementing LabelStatser
// answer from their indexes; others are scanned via EdgesLabeled.
func (s *Stats) Label(label string) LabelStat {
	s.mu.Lock()
	if st, ok := s.labels[label]; ok {
		s.mu.Unlock()
		return st
	}
	s.mu.Unlock()
	var st LabelStat
	if ls, ok := s.src.(LabelStatser); ok {
		st.Count, st.Sources, st.Targets = ls.LabelStats(label)
	} else {
		st = scanLabelStat(s.src, label)
	}
	s.metrics.RecordStatsLabel()
	s.mu.Lock()
	s.labels[label] = st
	s.mu.Unlock()
	return st
}

// scanLabelStat computes one label's statistics by scanning its edges.
func scanLabelStat(src Source, label string) LabelStat {
	edges := src.EdgesLabeled(label)
	srcs := map[string]bool{}
	tgts := map[string]bool{}
	for _, e := range edges {
		srcs[string(e.From)] = true
		tgts[e.To.Key()] = true
	}
	return LabelStat{Count: len(edges), Sources: len(srcs), Targets: len(tgts)}
}

// FanOut estimates the expected number of result rows per already-bound
// source node: the label's edge count spread over all nodes. Selective
// labels (few edges in a big graph) estimate near zero — exactly the
// conditions worth evaluating first.
func (s *Stats) FanOut(st LabelStat) float64 {
	if s.NumNodes == 0 {
		return 1
	}
	return float64(st.Count) / float64(s.NumNodes)
}

// FanIn estimates the expected rows per already-bound target value:
// the label's mean in-degree, damped the same way as FanOut.
func (s *Stats) FanIn(st LabelStat) float64 {
	if s.NumNodes == 0 {
		return 1
	}
	return float64(st.Count) / float64(s.NumNodes)
}
