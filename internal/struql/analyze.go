package struql

import "fmt"

// Analyze performs the safety checks the evaluator relies on:
//
//   - every variable used in create, link, and collect clauses is bound by
//     the block's where conjunction (including ancestors');
//   - arc-variable labels in link clauses are bound;
//   - built-in predicates and comparisons refer only to bindable variables;
//   - each Skolem function is used with one arity throughout the query.
//
// Parse calls Analyze automatically; it is exported for programmatically
// constructed queries.
func Analyze(q *Query) error {
	arity := map[string]int{}
	for _, blk := range q.Blocks {
		if err := analyzeBlock(blk, map[string]bool{}, arity); err != nil {
			return err
		}
	}
	return nil
}

func analyzeBlock(blk *Block, inherited map[string]bool, arity map[string]int) error {
	bound := make(map[string]bool, len(inherited))
	for v := range inherited {
		bound[v] = true
	}
	for _, c := range blk.Where {
		c.boundVars(bound)
	}
	// Filters must refer only to bindable variables.
	for _, c := range blk.Where {
		refs := map[string]bool{}
		switch c.(type) {
		case *PredCond, *CmpCond:
			c.refVars(refs)
			for v := range refs {
				if !bound[v] {
					return &ParseError{Line: c.condLine(),
						Msg: fmt.Sprintf("variable %s in %s is never bound by a positive condition", v, c)}
				}
			}
		}
	}
	// Aggregation consumes the where clause's variables: afterwards only
	// the grouping variables and the aggregate results are bound.
	if len(blk.Aggregate) > 0 {
		for _, a := range blk.Aggregate {
			if !bound[a.Arg] {
				return &ParseError{Line: a.Pos,
					Msg: fmt.Sprintf("aggregated variable %s is not bound in the where clause", a.Arg)}
			}
		}
		for _, v := range blk.AggBy {
			if !bound[v] {
				return &ParseError{Line: blk.Line,
					Msg: fmt.Sprintf("grouping variable %s is not bound in the where clause", v)}
			}
		}
		post := map[string]bool{}
		for _, v := range blk.AggBy {
			post[v] = true
		}
		for _, a := range blk.Aggregate {
			if post[a.As] {
				return &ParseError{Line: a.Pos,
					Msg: fmt.Sprintf("aggregate result %s collides with another post-aggregation variable", a.As)}
			}
			post[a.As] = true
		}
		bound = post
	}
	checkSkolem := func(st SkolemTerm) error {
		if prev, ok := arity[st.Fn]; ok && prev != len(st.Args) {
			return &ParseError{Line: st.Pos,
				Msg: fmt.Sprintf("Skolem function %s used with arities %d and %d", st.Fn, prev, len(st.Args))}
		}
		arity[st.Fn] = len(st.Args)
		for _, a := range st.Args {
			if !bound[a] {
				return &ParseError{Line: st.Pos,
					Msg: fmt.Sprintf("Skolem argument %s in %s is not bound in the where clause", a, st)}
			}
		}
		return nil
	}
	checkLinkTerm := func(t LinkTerm, pos int) error {
		if t.Skolem != nil {
			return checkSkolem(*t.Skolem)
		}
		if t.Term.IsVar() && !bound[t.Term.Var] {
			return &ParseError{Line: pos,
				Msg: fmt.Sprintf("variable %s is not bound in the where clause", t.Term.Var)}
		}
		return nil
	}
	for _, st := range blk.Create {
		if err := checkSkolem(st); err != nil {
			return err
		}
	}
	for _, le := range blk.Link {
		if err := checkSkolem(le.From); err != nil {
			return err
		}
		if le.Label.IsVar && !bound[le.Label.Var] {
			return &ParseError{Line: le.Pos,
				Msg: fmt.Sprintf("arc variable %s in link clause is not bound in the where clause", le.Label.Var)}
		}
		if err := checkLinkTerm(le.To, le.Pos); err != nil {
			return err
		}
	}
	for _, ce := range blk.Collect {
		if err := checkLinkTerm(ce.Target, ce.Pos); err != nil {
			return err
		}
	}
	for _, nb := range blk.Nested {
		if err := analyzeBlock(nb, bound, arity); err != nil {
			return err
		}
	}
	return nil
}
