package struql

import (
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf8"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokString // quoted label or string constant
	tokInt
	tokFloat
	tokArrow  // ->
	tokLParen // (
	tokRParen // )
	tokLBrace // {
	tokRBrace // }
	tokComma  // ,
	tokDot    // .
	tokPipe   // |
	tokStar   // *
	tokPlus   // +
	tokQuest  // ?
	tokUnder  // _
	tokTilde  // ~
	tokAmp    // &
	tokEq     // =
	tokNeq    // !=
	tokLt     // <
	tokLe     // <=
	tokGt     // >
	tokGe     // >=
	tokError
)

var tokKindNames = map[tokKind]string{
	tokEOF: "end of query", tokIdent: "identifier", tokString: "string",
	tokInt: "integer", tokFloat: "float", tokArrow: "'->'",
	tokLParen: "'('", tokRParen: "')'", tokLBrace: "'{'", tokRBrace: "'}'",
	tokComma: "','", tokDot: "'.'", tokPipe: "'|'", tokStar: "'*'",
	tokPlus: "'+'", tokQuest: "'?'", tokUnder: "'_'", tokTilde: "'~'",
	tokAmp: "'&'", tokEq: "'='", tokNeq: "'!='", tokLt: "'<'",
	tokLe: "'<='", tokGt: "'>'", tokGe: "'>='", tokError: "invalid token",
}

type token struct {
	kind tokKind
	text string
	i64  int64
	f64  float64
	line int
}

func (t token) describe() string {
	if t.kind == tokIdent || t.kind == tokString || t.kind == tokError {
		return fmt.Sprintf("%q", t.text)
	}
	return tokKindNames[t.kind]
}

// lexer scans StruQL source. Comments run from "//" or "#" to end of line.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return r
}

func (l *lexer) peek2() rune {
	if l.pos >= len(l.src) {
		return -1
	}
	_, w := utf8.DecodeRuneInString(l.src[l.pos:])
	if l.pos+w >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos+w:])
	return r
}

func (l *lexer) advance() rune {
	r, w := utf8.DecodeRuneInString(l.src[l.pos:])
	l.pos += w
	if r == '\n' {
		l.line++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.peek()
		if r == ' ' || r == '\t' || r == '\r' || r == '\n' {
			l.advance()
			continue
		}
		if r == '#' || (r == '/' && l.peek2() == '/') {
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		break
	}
}

func (l *lexer) scan() token {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}
	}
	line := l.line
	r := l.peek()
	switch r {
	case '(':
		l.advance()
		return token{kind: tokLParen, text: "(", line: line}
	case ')':
		l.advance()
		return token{kind: tokRParen, text: ")", line: line}
	case '{':
		l.advance()
		return token{kind: tokLBrace, text: "{", line: line}
	case '}':
		l.advance()
		return token{kind: tokRBrace, text: "}", line: line}
	case ',':
		l.advance()
		return token{kind: tokComma, text: ",", line: line}
	case '.':
		l.advance()
		return token{kind: tokDot, text: ".", line: line}
	case '|':
		l.advance()
		return token{kind: tokPipe, text: "|", line: line}
	case '*':
		l.advance()
		return token{kind: tokStar, text: "*", line: line}
	case '+':
		l.advance()
		return token{kind: tokPlus, text: "+", line: line}
	case '?':
		l.advance()
		return token{kind: tokQuest, text: "?", line: line}
	case '_':
		// A bare underscore is the any-label predicate; an underscore
		// followed by ident characters is an ordinary identifier.
		if !isIdentRune(l.peek2(), false) {
			l.advance()
			return token{kind: tokUnder, text: "_", line: line}
		}
	case '~':
		l.advance()
		return token{kind: tokTilde, text: "~", line: line}
	case '&':
		l.advance()
		return token{kind: tokAmp, text: "&", line: line}
	case '=':
		l.advance()
		return token{kind: tokEq, text: "=", line: line}
	case '!':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token{kind: tokNeq, text: "!=", line: line}
		}
		return token{kind: tokError, text: "!", line: line}
	case '<':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token{kind: tokLe, text: "<=", line: line}
		}
		return token{kind: tokLt, text: "<", line: line}
	case '>':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token{kind: tokGe, text: ">=", line: line}
		}
		return token{kind: tokGt, text: ">", line: line}
	case '-':
		l.advance()
		if l.peek() == '>' {
			l.advance()
			return token{kind: tokArrow, text: "->", line: line}
		}
		if unicode.IsDigit(l.peek()) {
			return l.scanNumber(line, true)
		}
		return token{kind: tokError, text: "-", line: line}
	case '"':
		return l.scanString(line)
	}
	if unicode.IsDigit(r) {
		return l.scanNumber(line, false)
	}
	if isIdentRune(r, true) {
		start := l.pos
		l.advance()
		for l.pos < len(l.src) && isIdentRune(l.peek(), false) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line}
	}
	l.advance()
	return token{kind: tokError, text: string(r), line: line}
}

func isIdentRune(r rune, first bool) bool {
	if unicode.IsLetter(r) || r == '_' {
		return true
	}
	return !first && unicode.IsDigit(r)
}

// scanString reads a Go-syntax quoted string; the printer quotes with
// strconv, so lexing with strconv keeps print→parse round trips exact
// for every label and constant, including control characters.
func (l *lexer) scanString(line int) token {
	start := l.pos
	l.advance() // opening quote
	for l.pos < len(l.src) {
		r := l.advance()
		if r == '\\' {
			if l.pos < len(l.src) {
				l.advance()
			}
			continue
		}
		if r == '"' {
			raw := l.src[start:l.pos]
			s, err := strconv.Unquote(raw)
			if err != nil {
				return token{kind: tokError, text: "bad string literal " + raw, line: line}
			}
			return token{kind: tokString, text: s, line: line}
		}
		if r == '\n' {
			return token{kind: tokError, text: "unterminated string", line: line}
		}
	}
	return token{kind: tokError, text: "unterminated string", line: line}
}

func (l *lexer) scanNumber(line int, neg bool) token {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		r := l.peek()
		if unicode.IsDigit(r) {
			l.advance()
			continue
		}
		if r == '.' && !isFloat && unicode.IsDigit(l.peek2()) {
			isFloat = true
			l.advance()
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if neg {
		text = "-" + text
	}
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{kind: tokError, text: text, line: line}
		}
		return token{kind: tokFloat, text: text, f64: f, line: line}
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return token{kind: tokError, text: text, line: line}
	}
	return token{kind: tokInt, text: text, i64: i, line: line}
}
