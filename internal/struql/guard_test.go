package struql

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"strudel/internal/ddl"
	"strudel/internal/graph"
	"strudel/internal/obs"
)

// guardGraph builds n Items nodes cross-linkable into n² rows, plus a
// next-cycle for path closures.
func guardGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		oid := graph.OID(fmt.Sprintf("n%03d", i))
		g.AddToCollection("Items", oid)
		g.AddEdge(oid, "year", graph.NewInt(int64(1990+i)))
		g.AddEdge(oid, "next", graph.NewNode(graph.OID(fmt.Sprintf("n%03d", (i+1)%n))))
	}
	return g
}

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestMaxRowsTripsOnCrossProduct: an unselective condition pair blows
// past the row cap and returns a typed, diagnosable error instead of
// consuming n² memory.
func TestMaxRowsTripsOnCrossProduct(t *testing.T) {
	q := mustParse(t, `where Items(x), Items(y) create P(x, y)`)
	src := NewGraphSource(guardGraph(40)) // 1600 rows unguarded
	m := &obs.EvalMetrics{}
	_, err := Eval(q, src, &Options{MaxRows: 100, Metrics: m})
	if err == nil {
		t.Fatal("want ResourceExhausted")
	}
	var re *ResourceExhausted
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want *ResourceExhausted", err, err)
	}
	if re.Limit != LimitRows || re.Used <= re.Max || re.Max != 100 {
		t.Errorf("guard = %+v", re)
	}
	if m.GuardTrips[obs.GuardRows].Load() == 0 {
		t.Error("rows guard trip not counted")
	}
	// The same query under a generous cap matches the unguarded result.
	unguarded, err := Eval(q, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := Eval(q, src, &Options{MaxRows: 10000})
	if err != nil {
		t.Fatalf("generous cap tripped: %v", err)
	}
	if ddl.Print(unguarded.Graph) != ddl.Print(guarded.Graph) {
		t.Error("a non-tripping guard changed the result")
	}
}

// TestMaxNFAStatesTripsOnClosure: a Kleene closure over a large cycle
// visits every (node, NFA-state) product state; a tight cap converts
// the walk into a typed failure and counts the trip.
func TestMaxNFAStatesTripsOnClosure(t *testing.T) {
	q := mustParse(t, `where Items(x), x -> ("next")* -> y create R(x, y)`)
	src := NewGraphSource(guardGraph(50))
	m := &obs.EvalMetrics{}
	_, err := Eval(q, src, &Options{MaxNFAStates: 10, Metrics: m})
	if err == nil {
		t.Fatal("want ResourceExhausted")
	}
	var re *ResourceExhausted
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want *ResourceExhausted", err, err)
	}
	if re.Limit != LimitNFAStates || re.Max != 10 {
		t.Errorf("guard = %+v", re)
	}
	if m.GuardTrips[obs.GuardNFAStates].Load() == 0 {
		t.Error("nfa-states guard trip not counted")
	}
	guarded, err := Eval(q, src, &Options{MaxNFAStates: 100000})
	if err != nil {
		t.Fatalf("generous cap tripped: %v", err)
	}
	unguarded, _ := Eval(q, src, nil)
	if ddl.Print(unguarded.Graph) != ddl.Print(guarded.Graph) {
		t.Error("a non-tripping guard changed the result")
	}
}

// TestDeadlineTripsAndIsTyped: an already-expired deadline stops
// evaluation at the first polling point with a typed error.
func TestDeadlineTripsAndIsTyped(t *testing.T) {
	q := mustParse(t, `where Items(x), Items(y) create P(x, y)`)
	src := NewGraphSource(guardGraph(30))
	m := &obs.EvalMetrics{}
	_, err := Eval(q, src, &Options{Deadline: time.Now().Add(-time.Second), Metrics: m})
	if err == nil {
		t.Fatal("want ResourceExhausted")
	}
	var re *ResourceExhausted
	if !errors.As(err, &re) || re.Limit != LimitDeadline {
		t.Fatalf("err = %v, want deadline ResourceExhausted", err)
	}
	if m.GuardTrips[obs.GuardDeadline].Load() == 0 {
		t.Error("deadline guard trip not counted")
	}
	// A future deadline leaves the result untouched.
	ok, err := Eval(q, src, &Options{Deadline: time.Now().Add(time.Minute)})
	if err != nil {
		t.Fatalf("future deadline tripped: %v", err)
	}
	unguarded, _ := Eval(q, src, nil)
	if ddl.Print(unguarded.Graph) != ddl.Print(ok.Graph) {
		t.Error("a non-tripping deadline changed the result")
	}
}

// TestGuardsInsideNotSubqueries: forked sub-evaluations inherit the
// guards, so a runaway negation cannot dodge them.
func TestGuardsInsideNotSubqueries(t *testing.T) {
	// y != z needs both vars bound, so the sub-evaluation must build the
	// full Items×Items relation before it can filter.
	q := mustParse(t, `where Items(x), not(Items(y), Items(z), y != z) create P(x)`)
	src := NewGraphSource(guardGraph(40))
	_, err := Eval(q, src, &Options{MaxRows: 50})
	var re *ResourceExhausted
	if !errors.As(err, &re) || re.Limit != LimitRows {
		t.Fatalf("err = %v, want rows ResourceExhausted from the not(...) body", err)
	}
}
