package struql_test

// External test file: checks that queries answer identically against the
// naive GraphSource and the fully-indexed repository (§2.1 / experiment
// E6's correctness precondition), and that UnionSource behaves as a union.

import (
	"fmt"
	"testing"
	"testing/quick"

	"strudel/internal/graph"
	"strudel/internal/repo"
	"strudel/internal/struql"
)

func syntheticGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		oid := graph.OID(fmt.Sprintf("p%d", i))
		g.AddToCollection("Items", oid)
		g.AddEdge(oid, "year", graph.NewInt(int64(1990+i%10)))
		g.AddEdge(oid, "kind", graph.NewString([]string{"a", "b", "c"}[i%3]))
		g.AddEdge(oid, "next", graph.NewNode(graph.OID(fmt.Sprintf("p%d", (i+1)%n))))
		if i%4 == 0 {
			g.AddEdge(oid, "extra", graph.NewString("rare"))
		}
	}
	return g
}

var equivalenceQueries = []string{
	`where Items(x), x -> "year" -> y, y > 1995 create N(x, y)`,
	`where Items(x), x -> l -> v create P(x) link P(x) -> l -> v`,
	`where Items(x), x -> "next"."next" -> z create NN(x, z)`,
	`where Items(x), x -> ("next")* -> z, z -> "extra" -> e create R(x, z)`,
	`where Items(x), not(x -> "extra" -> e) create NoExtra(x)`,
	`where Items(x), x -> "kind" -> "b" create B(x)`,
}

func TestIndexedAndNaiveSourcesAgree(t *testing.T) {
	g := syntheticGraph(40)
	naive := struql.NewGraphSource(g)
	indexed := repo.NewIndexed(g.Copy())
	for _, qs := range equivalenceQueries {
		q := struql.MustParse(qs)
		rn, err := struql.Eval(q, naive, nil)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		ri, err := struql.Eval(q, indexed, nil)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if rn.Graph.Dump() != ri.Graph.Dump() {
			t.Errorf("sources disagree on %s:\n--- naive\n%s--- indexed\n%s", qs, rn.Graph.Dump(), ri.Graph.Dump())
		}
	}
}

func TestIndexedAndNaiveAgreeProperty(t *testing.T) {
	f := func(seed uint8) bool {
		g := syntheticGraph(int(seed%25) + 3)
		q := struql.MustParse(equivalenceQueries[int(seed)%len(equivalenceQueries)])
		rn, err1 := struql.Eval(q, struql.NewGraphSource(g), nil)
		ri, err2 := struql.Eval(q, repo.NewIndexed(g.Copy()), nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return rn.Graph.Dump() == ri.Graph.Dump()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestUnionSource(t *testing.T) {
	a := graph.New()
	a.AddToCollection("C", "x")
	a.AddEdge("x", "v", graph.NewInt(1))
	b := graph.New()
	b.AddToCollection("C", "y")
	b.AddToCollection("C", "x") // overlap
	b.AddEdge("y", "v", graph.NewInt(2))
	b.AddEdge("x", "w", graph.NewInt(3))
	u := struql.NewUnionSource(struql.NewGraphSource(a), struql.NewGraphSource(b))
	if got := u.Collection("C"); len(got) != 2 {
		t.Errorf("union collection = %v", got)
	}
	if !u.InCollection("C", "y") || !u.InCollection("C", "x") {
		t.Error("union membership wrong")
	}
	out := u.Out("x")
	if len(out) != 2 {
		t.Errorf("union out(x) = %v", out)
	}
	if got := u.Labels(); len(got) != 2 {
		t.Errorf("union labels = %v", got)
	}
	if len(u.Nodes()) != 2 {
		t.Errorf("union nodes = %v", u.Nodes())
	}
	if len(u.In(graph.NewInt(2))) != 1 {
		t.Error("union In failed")
	}
	if len(u.EdgesLabeled("v")) != 2 {
		t.Error("union EdgesLabeled failed")
	}
}

func TestQueryOverUnionSeesBothSides(t *testing.T) {
	data := graph.New()
	data.AddToCollection("Pubs", "p")
	data.AddEdge("p", "title", graph.NewString("T"))
	built := graph.New()
	built.AddToCollection("Pages", "Page(p)")
	built.AddEdge("Page(p)", "self", graph.NewNode("p"))
	u := struql.NewUnionSource(struql.NewGraphSource(data), struql.NewGraphSource(built))
	r, err := struql.Eval(struql.MustParse(
		`where Pages(pg), pg -> "self" -> x, x -> "title" -> t create Nav(pg) link Nav(pg) -> "title" -> t`), u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Graph.HasEdge("Nav(Page_p_)", "title", graph.NewString("T")) {
		t.Errorf("cross-side join failed:\n%s", r.Graph.Dump())
	}
}
