package struql

import (
	"strings"
	"testing"

	"strudel/internal/graph"
)

// aggGraph: publications with years and citation counts.
func aggGraph() *graph.Graph {
	g := graph.New()
	add := func(oid graph.OID, year, cites int64) {
		g.AddToCollection("Publications", oid)
		g.AddEdge(oid, "year", graph.NewInt(year))
		g.AddEdge(oid, "cites", graph.NewInt(cites))
	}
	add("p1", 1997, 10)
	add("p2", 1997, 30)
	add("p3", 1998, 5)
	add("p4", 1998, 15)
	add("p5", 1998, 1)
	return g
}

func TestAggregateCountByGroup(t *testing.T) {
	// A year index page that records how many papers each year has —
	// §6.2's "grouping and aggregation" extension in use.
	r := evalOn(t, `
where Publications(x), x -> "year" -> y
aggregate count(x) as n by y
create YearStat(y)
link YearStat(y) -> "year" -> y,
     YearStat(y) -> "papers" -> n
`, aggGraph())
	if !r.Graph.HasEdge("YearStat(1997)", "papers", graph.NewInt(2)) {
		t.Errorf("1997 count wrong:\n%s", r.Graph.Dump())
	}
	if !r.Graph.HasEdge("YearStat(1998)", "papers", graph.NewInt(3)) {
		t.Errorf("1998 count wrong:\n%s", r.Graph.Dump())
	}
}

func TestAggregateSumMinMaxAvg(t *testing.T) {
	r := evalOn(t, `
where Publications(x), x -> "year" -> y, x -> "cites" -> c
aggregate sum(c) as total, min(c) as lo, max(c) as hi, avg(c) as mean by y
create Stat(y)
link Stat(y) -> "total" -> total,
     Stat(y) -> "lo" -> lo,
     Stat(y) -> "hi" -> hi,
     Stat(y) -> "mean" -> mean
`, aggGraph())
	g := r.Graph
	if !g.HasEdge("Stat(1997)", "total", graph.NewInt(40)) {
		t.Errorf("1997 total:\n%s", g.Dump())
	}
	if !g.HasEdge("Stat(1997)", "lo", graph.NewInt(10)) || !g.HasEdge("Stat(1997)", "hi", graph.NewInt(30)) {
		t.Errorf("1997 min/max:\n%s", g.Dump())
	}
	if !g.HasEdge("Stat(1997)", "mean", graph.NewFloat(20)) {
		t.Errorf("1997 avg:\n%s", g.Dump())
	}
	if !g.HasEdge("Stat(1998)", "total", graph.NewInt(21)) {
		t.Errorf("1998 total:\n%s", g.Dump())
	}
}

func TestAggregateGlobal(t *testing.T) {
	// No grouping variables: one row over everything.
	r := evalOn(t, `
where Publications(x)
aggregate count(x) as n
create Stats()
link Stats() -> "publications" -> n
`, aggGraph())
	if !r.Graph.HasEdge("Stats()", "publications", graph.NewInt(5)) {
		t.Errorf("global count:\n%s", r.Graph.Dump())
	}
}

func TestAggregateCountsDistinct(t *testing.T) {
	// Multi-valued attributes inflate rows; count is over distinct values.
	g := graph.New()
	g.AddToCollection("C", "a")
	g.AddEdge("a", "tag", graph.NewString("x"))
	g.AddEdge("a", "tag", graph.NewString("y"))
	g.AddToCollection("C", "b")
	g.AddEdge("b", "tag", graph.NewString("x"))
	r := evalOn(t, `
where C(o), o -> "tag" -> t
aggregate count(o) as objects, count(t) as tags
create S()
link S() -> "objects" -> objects, S() -> "tags" -> tags
`, g)
	if !r.Graph.HasEdge("S()", "objects", graph.NewInt(2)) {
		t.Errorf("objects:\n%s", r.Graph.Dump())
	}
	if !r.Graph.HasEdge("S()", "tags", graph.NewInt(2)) {
		t.Errorf("tags:\n%s", r.Graph.Dump())
	}
}

func TestAggregatePrintParseRoundTrip(t *testing.T) {
	src := `
where Publications(x), x -> "year" -> y
aggregate count(x) as n, max(y) as latest by y
create S(y)
link S(y) -> "n" -> n
`
	q := MustParse(src)
	printed := q.String()
	q2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if q2.String() != printed {
		t.Errorf("not a fixed point:\n%s\nvs\n%s", printed, q2.String())
	}
	if len(q2.Blocks[0].Aggregate) != 2 || q2.Blocks[0].Aggregate[1].Fn != AggMax {
		t.Errorf("aggregate lost in round trip: %+v", q2.Blocks[0])
	}
}

func TestAggregateAnalysisErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{`where C(x) aggregate count(z) as n create S()`, "aggregated variable z"},
		{`where C(x) aggregate count(x) as n by w create S()`, "grouping variable w"},
		{`where C(x) aggregate count(x) as n, sum(x) as n create S()`, "collides"},
		{`where C(x) aggregate count(x) as n create S(x)`, "not bound"}, // x consumed by aggregation
		{`where C(x) aggregate bogus(x) as n create S()`, "unknown aggregation function"},
		{`where C(x) aggregate count(x) n create S()`, "expected 'as'"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q): err = %v, want %q", c.src, err, c.frag)
		}
	}
}

func TestAggregateNestedBlocksSeeGroupedBindings(t *testing.T) {
	r := evalOn(t, `
where Publications(x), x -> "year" -> y
aggregate count(x) as n by y
create YearStat(y)
{
  where n > 2
  link YearStat(y) -> "busy" -> true
}
`, aggGraph())
	if !r.Graph.HasEdge("YearStat(1998)", "busy", graph.NewBool(true)) {
		t.Errorf("1998 should be busy:\n%s", r.Graph.Dump())
	}
	if r.Graph.HasEdge("YearStat(1997)", "busy", graph.NewBool(true)) {
		t.Errorf("1997 should not be busy:\n%s", r.Graph.Dump())
	}
}

func TestAggregateDeterministicGroupOrder(t *testing.T) {
	a := evalOn(t, `where Publications(x), x -> "year" -> y aggregate count(x) as n by y create S(y) link S(y) -> "n" -> n`, aggGraph())
	b := evalOn(t, `where Publications(x), x -> "year" -> y aggregate count(x) as n by y create S(y) link S(y) -> "n" -> n`, aggGraph())
	if a.Graph.Dump() != b.Graph.Dump() {
		t.Error("aggregation not deterministic")
	}
}
