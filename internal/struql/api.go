package struql

import (
	"sort"

	"strudel/internal/graph"
)

// ReachableVia returns every value reachable from start by a path matching
// the regular path expression, in deterministic order. It is the
// building block other packages (constraint checking, HTML generation
// diagnostics) use to ask reachability questions without re-implementing
// the product-automaton search.
func ReachableVia(src Source, start graph.OID, path *PathExpr) []graph.Value {
	var frozen *graph.Frozen
	if fs, ok := src.(frozenSource); ok {
		frozen = fs.Frozen()
	}
	return newPathMatcher(path, src, frozen, 0).reachableFrom(start)
}

// ParsePathExpr parses a standalone regular path expression such as
// `"Paper"`, `_*`, or `("a"|"b")+`.
func ParsePathExpr(src string) (*PathExpr, error) {
	p := &parser{lex: newLexer(src)}
	p.next()
	pe, err := p.pathExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %s after path expression", p.tok.describe())
	}
	return pe, nil
}

// MustParsePathExpr is ParsePathExpr for tests and literals.
func MustParsePathExpr(src string) *PathExpr {
	pe, err := ParsePathExpr(src)
	if err != nil {
		panic(err)
	}
	return pe
}

// PathNFASize returns the number of NFA states the expression compiles to,
// a complexity statistic used in experiment reporting.
func PathNFASize(p *PathExpr) int { return compileNFA(p).states }

// MatchesLabel reports whether a leaf path predicate (label literal, _, or
// ~"re") matches the given edge label.
func (p *PathExpr) MatchesLabel(label string) bool { return p.matchLabel(label) }

// NFA is an exported view of a compiled regular path expression, used by
// the constraints package to walk site schemas "in parallel" with a path
// expression.
type NFA struct{ n *nfa }

// NFAArc is one predicate-guarded transition: Pred is a leaf PathExpr
// (PLabel, PAny, or PRegex); To lists the epsilon-closed successor states.
type NFAArc struct {
	Pred *PathExpr
	To   []int
}

// CompilePath compiles a path expression to an NFA.
func CompilePath(p *PathExpr) *NFA { return &NFA{n: compileNFA(p)} }

// StartStates returns the epsilon closure of the start state.
func (a *NFA) StartStates() []int { return a.n.closure([]int{a.n.start}) }

// Accepting reports whether the state is the accepting state.
func (a *NFA) Accepting(state int) bool { return state == a.n.accept }

// AcceptingAny reports whether any of the states is accepting.
func (a *NFA) AcceptingAny(states []int) bool { return a.n.accepting(states) }

// Arcs returns the guarded transitions out of a state, with epsilon-closed
// target sets.
func (a *NFA) Arcs(state int) []NFAArc {
	var out []NFAArc
	for _, tr := range a.n.trans[state] {
		out = append(out, NFAArc{Pred: tr.pred, To: a.n.closure([]int{tr.to})})
	}
	return out
}

// RenameCond returns a deep copy of the condition with variables renamed
// per sub; variables absent from sub are kept. Used when constraint
// verification splices conditions from several query contexts into one
// violation query.
func RenameCond(c Cond, sub map[string]string) Cond {
	rt := func(t Term) Term {
		if t.IsVar() {
			if nv, ok := sub[t.Var]; ok {
				return VarTerm(nv)
			}
		}
		return t
	}
	rv := func(v string) string {
		if nv, ok := sub[v]; ok {
			return nv
		}
		return v
	}
	switch c := c.(type) {
	case *MemberCond:
		return &MemberCond{Coll: c.Coll, Var: rv(c.Var), Pos: c.Pos}
	case *PredCond:
		return &PredCond{Name: c.Name, Arg: rt(c.Arg), Pos: c.Pos}
	case *CmpCond:
		return &CmpCond{Op: c.Op, L: rt(c.L), R: rt(c.R), Pos: c.Pos}
	case *NotCond:
		inner := make([]Cond, len(c.Conds))
		for i, k := range c.Conds {
			inner[i] = RenameCond(k, sub)
		}
		return &NotCond{Conds: inner, Pos: c.Pos}
	case *EdgeCond:
		return &EdgeCond{From: rt(c.From), LabelVar: rv(c.LabelVar), To: rt(c.To), Pos: c.Pos}
	case *PathCond:
		return &PathCond{From: rt(c.From), Path: c.Path, To: rt(c.To), Pos: c.Pos}
	}
	return c
}

// CondVars returns the variables referenced anywhere in the condition.
func CondVars(c Cond) []string {
	set := map[string]bool{}
	c.boundVars(set)
	c.refVars(set)
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}
