package struql

import (
	"fmt"
	"sort"
	"strings"

	"strudel/internal/graph"
)

// Access-path kinds a plan step can carry. They name how one condition
// will touch the source: seeks go through an index (a collection
// membership probe, a node's out-edges under one label, the in-edge or
// value index, a label-extent walk seeded from bound variables), scans
// visit an extent or the whole graph.
const (
	AccessFilter     = "filter"      // pure per-row predicate, no graph access
	AccessAntiJoin   = "anti-join"   // not(...) sub-evaluation per row
	AccessMemberScan = "scan-coll"   // enumerate a collection extent
	AccessMemberSeek = "member-seek" // probe membership of a bound node
	AccessSeekOut    = "seek-out"    // bound source node → out-edges by label
	AccessSeekIn     = "seek-in"     // bound target value → in-edge index
	AccessLabelScan  = "scan-label"  // walk one label's edge extent
	AccessEdgeScan   = "scan-edges"  // walk every edge
	AccessRPEFrom    = "rpe-from"    // product-automaton search from bound starts
	AccessRPESeed    = "rpe-seed"    // product-automaton search seeded by label index
	AccessRPEScan    = "rpe-scan"    // product-automaton search from every node
)

// seekAccess reports whether the access kind goes through an index
// (for the planner's seek-vs-scan dispatch counters).
func seekAccess(kind string) bool {
	switch kind {
	case AccessMemberSeek, AccessSeekOut, AccessSeekIn, AccessRPEFrom, AccessRPESeed:
		return true
	}
	return false
}

// scanAccess reports whether the access kind visits an extent or the
// whole graph.
func scanAccess(kind string) bool {
	switch kind {
	case AccessMemberScan, AccessLabelScan, AccessEdgeScan, AccessRPEScan:
		return true
	}
	return false
}

// accessKind strips the "[detail]" suffix from an access string,
// returning the bare Access* kind.
func accessKind(access string) string {
	if i := strings.IndexByte(access, '['); i >= 0 {
		return access[:i]
	}
	return access
}

// recordAccess counts one scheduled step's dispatch class in the
// planner metrics: index seek, full scan, or neither (filters).
func (ctx *evalCtx) recordAccess(access string) {
	if ctx.metrics == nil {
		return
	}
	kind := accessKind(access)
	switch {
	case seekAccess(kind):
		ctx.metrics.RecordSeek()
		if kind == AccessRPESeed {
			ctx.metrics.RecordRPESeed()
		}
	case scanAccess(kind):
		ctx.metrics.RecordScan()
	}
}

// seedStarts returns the distinct sources of the labels' edge extents,
// sorted — the seeded start set of a regular-path search whose accepted
// paths must all begin with one of the labels.
func seedStarts(src Source, labels []string) []graph.Value {
	seen := map[graph.OID]bool{}
	for _, l := range labels {
		for _, e := range src.EdgesLabeled(l) {
			seen[e.From] = true
		}
	}
	oids := make([]graph.OID, 0, len(seen))
	for o := range seen {
		oids = append(oids, o)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	out := make([]graph.Value, len(oids))
	for i, o := range oids {
		out[i] = graph.NewNode(o)
	}
	return out
}

// seedStartsFrozen is seedStarts against a snapshot: each label's
// extent is already grouped by ascending source node, so per-label
// distinct sources fall out of a linear walk; the cross-label merge
// sorts and dedups the (typically small) union.
func seedStartsFrozen(f *graph.Frozen, labels []string) []graph.Value {
	var oids []graph.OID
	for _, l := range labels {
		var prev graph.OID
		first := true
		f.ForEachLabeled(l, func(from graph.OID, _ graph.Value) bool {
			if first || from != prev {
				oids = append(oids, from)
				prev, first = from, false
			}
			return true
		})
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	out := make([]graph.Value, 0, len(oids))
	for i, o := range oids {
		if i == 0 || o != oids[i-1] {
			out = append(out, graph.NewNode(o))
		}
	}
	return out
}

// PlanStep is one scheduled condition: which condition runs (by its
// textual index), the access path chosen for it, its estimated cost
// (the expected rows-out/rows-in multiplier at selection time), and the
// runtime hints the operators consult.
type PlanStep struct {
	// Cond is the condition's printed form.
	Cond string
	// Index is the condition's zero-based textual position.
	Index int
	// Access is the chosen access path (one of the Access* kinds, plus
	// an optional "[detail]" suffix such as the label sought).
	Access string
	// Cost is the planner's estimated rows multiplier when the step was
	// selected.
	Cost float64
	// PreferIn asks a single-label path with both endpoints bound to
	// verify through the in-edge index rather than the source's
	// out-edges (chosen when the label's fan-in beats its fan-out).
	PreferIn bool
	// SeedLabels, for a regular-path condition with an unbound start
	// variable, lists the concrete labels every accepted path must start
	// with; evaluation seeds its start set from those labels' extents
	// instead of scanning every node. Empty means no seeding applies.
	SeedLabels []string
}

// Plan is the scheduled evaluation order of one where clause. It is
// what EXPLAIN renders and what the evaluator executes.
type Plan struct {
	Steps []PlanStep
	// Stats reports whether collected statistics informed the costs
	// (false under Options.NoStats — the heuristic baseline — and for
	// the textual NoReorder order).
	Stats bool
	// Textual marks a NoReorder plan: conditions run in first-ready
	// textual order and costs are not estimated.
	Textual bool
}

// String renders the plan compactly on one line — the form recorded in
// Result.Plan.
func (p *Plan) String() string {
	if p == nil || len(p.Steps) == 0 {
		return "empty"
	}
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		if p.Textual {
			parts[i] = fmt.Sprintf("%s[%s]", s.Cond, s.Access)
		} else {
			parts[i] = fmt.Sprintf("%s[%s]$%.1f", s.Cond, s.Access, s.Cost)
		}
	}
	return strings.Join(parts, " ; ")
}

// Detail renders the plan as numbered lines, one per step — the EXPLAIN
// format. Each line shows the condition, its access path, the cost
// estimate, and the condition's original textual position when the
// planner moved it.
func (p *Plan) Detail(indent string) string {
	var b strings.Builder
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "%s%d. %-44s %s", indent, i+1, s.Cond, s.Access)
		if !p.Textual {
			fmt.Fprintf(&b, "  cost=%.1f", s.Cost)
		}
		if s.Index != i {
			fmt.Fprintf(&b, "  (moved from #%d)", s.Index+1)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Reordered counts steps whose scheduled position differs from their
// textual position.
func (p *Plan) Reordered() int {
	n := 0
	for i, s := range p.Steps {
		if s.Index != i {
			n++
		}
	}
	return n
}

// planConds runs the planner once over one condition list: a greedy
// schedule that repeatedly picks the ready condition with the lowest
// estimated cost. Readiness keeps the schedule safe — filters wait for
// their variables, negations for every outer variable they mention —
// and the cost model orders the rest. With NoReorder the cost model is
// ignored and the first ready condition in textual order runs next
// (textual order itself would let an ill-ordered filter drop rows
// before its binder runs; first-ready keeps the declarative semantics).
func (ctx *evalCtx) planConds(conds []Cond, inputVars []string) (*Plan, error) {
	n := len(conds)
	textual := ctx.opts.NoReorder
	plan := &Plan{Stats: ctx.stats != nil, Textual: textual}
	bound := map[string]bool{}
	for _, v := range inputVars {
		bound[v] = true
	}
	// canBind is everything the positive conditions can bind; filters and
	// negations wait until their referenced bindable variables are bound.
	canBind := map[string]bool{}
	for v := range bound {
		canBind[v] = true
	}
	for _, c := range conds {
		c.boundVars(canBind)
	}
	used := make([]bool, n)
	for len(plan.Steps) < n {
		best, bestCost := -1, 0.0
		var bestStep PlanStep
		for i, c := range conds {
			if used[i] {
				continue
			}
			step, ready := ctx.condCost(c, bound, canBind)
			if !ready {
				continue
			}
			if best == -1 || (!textual && step.Cost < bestCost) {
				best, bestCost, bestStep = i, step.Cost, step
			}
			if textual {
				break // first ready in textual order wins
			}
		}
		if best == -1 {
			return nil, &ParseError{Line: conds[0].condLine(),
				Msg: "cannot schedule conditions: a filter refers to variables no positive condition binds"}
		}
		used[best] = true
		bestStep.Cond = conds[best].String()
		bestStep.Index = best
		plan.Steps = append(plan.Steps, bestStep)
		conds[best].boundVars(bound)
	}
	return plan, nil
}

// condCost estimates the cost (rows-produced multiplier) of evaluating
// c now and decides its access path. With statistics available the
// per-label estimates come from the label's measured extent; without
// them (Options.NoStats) the uniform average-degree heuristics of the
// pre-cost-model planner apply.
func (ctx *evalCtx) condCost(c Cond, bound, canBind map[string]bool) (PlanStep, bool) {
	termBound := func(t Term) bool { return !t.IsVar() || bound[t.Var] }
	switch c := c.(type) {
	case *MemberCond:
		if bound[c.Var] {
			return PlanStep{Access: AccessMemberSeek, Cost: 0.1}, true
		}
		return PlanStep{Access: AccessMemberScan + "[" + c.Coll + "]",
			Cost: float64(ctx.src.CollectionSize(c.Coll)) + 1}, true
	case *PredCond:
		if termBound(c.Arg) {
			return PlanStep{Access: AccessFilter, Cost: 0}, true
		}
		return PlanStep{}, false
	case *CmpCond:
		if termBound(c.L) && termBound(c.R) {
			return PlanStep{Access: AccessFilter, Cost: 0}, true
		}
		return PlanStep{}, false
	case *NotCond:
		refs := map[string]bool{}
		c.refVars(refs)
		for v := range refs {
			if canBind[v] && !bound[v] {
				return PlanStep{}, false
			}
		}
		return PlanStep{Access: AccessAntiJoin, Cost: 5}, true
	case *EdgeCond:
		switch {
		case termBound(c.From):
			return PlanStep{Access: AccessSeekOut, Cost: ctx.avgDeg}, true
		case termBound(c.To):
			return PlanStep{Access: AccessSeekIn, Cost: ctx.avgDeg}, true
		case bound[c.LabelVar]:
			return PlanStep{Access: AccessLabelScan, Cost: float64(ctx.src.NumEdges())/4 + 8}, true
		default:
			return PlanStep{Access: AccessEdgeScan, Cost: float64(ctx.src.NumEdges()) + 16}, true
		}
	case *PathCond:
		if label, ok := singleLabel(c.Path); ok {
			return ctx.singleLabelCost(c, label, termBound), true
		}
		return ctx.rpeCost(c, termBound), true
	}
	return PlanStep{}, false
}

// singleLabelCost plans x -> "l" -> y: a seek from whichever side is
// bound, with statistics choosing both the estimate and — when both
// sides are bound — the cheaper verification direction.
func (ctx *evalCtx) singleLabelCost(c *PathCond, label string, termBound func(Term) bool) PlanStep {
	fromB, toB := termBound(c.From), termBound(c.To)
	if ctx.stats == nil {
		// Heuristic baseline: uniform degree estimates.
		switch {
		case fromB:
			return PlanStep{Access: AccessSeekOut + "[" + label + "]", Cost: ctx.avgDeg}
		case toB:
			return PlanStep{Access: AccessSeekIn + "[" + label + "]", Cost: ctx.avgDeg}
		default:
			return PlanStep{Access: AccessLabelScan + "[" + label + "]",
				Cost: float64(ctx.src.LabelCount(label)) + 4}
		}
	}
	ls := ctx.stats.Label(label)
	switch {
	case fromB && toB:
		// Both endpoints bound: a cheap check, verified through whichever
		// index has the smaller extent per endpoint.
		preferIn := ls.Targets > ls.Sources
		access := AccessSeekOut
		if preferIn {
			access = AccessSeekIn
		}
		return PlanStep{Access: access + "[" + label + "]", Cost: 0.05, PreferIn: preferIn}
	case fromB:
		return PlanStep{Access: AccessSeekOut + "[" + label + "]", Cost: ctx.stats.FanOut(ls) + 0.1}
	case toB:
		return PlanStep{Access: AccessSeekIn + "[" + label + "]", Cost: ctx.stats.FanIn(ls) + 0.1}
	default:
		return PlanStep{Access: AccessLabelScan + "[" + label + "]", Cost: float64(ls.Count) + 1}
	}
}

// rpeCost plans a general regular-path condition. With a bound start
// the product search runs from those nodes. With an unbound start, a
// path that must begin with one of a known set of concrete labels is
// seeded from those labels' extents; otherwise every node seeds the
// search — the expensive fallback the planner schedules last.
func (ctx *evalCtx) rpeCost(c *PathCond, termBound func(Term) bool) PlanStep {
	if termBound(c.From) {
		cost := 4 * ctx.avgDeg
		if ctx.stats != nil {
			if labels, ok := startLabels(c.Path); ok {
				sum := 0.0
				for _, l := range labels {
					sum += float64(ctx.stats.Label(l).Count)
				}
				if n := ctx.stats.NumNodes; n > 0 {
					cost = 2*sum/float64(n) + 1
				}
			}
		}
		return PlanStep{Access: AccessRPEFrom, Cost: cost}
	}
	if ctx.stats != nil {
		if labels, ok := startLabels(c.Path); ok {
			sum := 0
			for _, l := range labels {
				sum += ctx.stats.Label(l).Sources
			}
			return PlanStep{Access: AccessRPESeed + "[" + strings.Join(labels, "|") + "]",
				Cost: 4*float64(sum) + 8, SeedLabels: labels}
		}
	}
	return PlanStep{Access: AccessRPEScan, Cost: float64(ctx.src.NumEdges())*4 + 64}
}

// startLabels computes the set of concrete labels an accepted path must
// start with. It reports ok=false when no such set exists: the
// expression can match the empty path (every node then matches itself,
// so no seed set is complete) or some first transition is a wildcard or
// regex predicate. The analysis is exact: it reads the compiled NFA's
// start closure.
func startLabels(p *PathExpr) ([]string, bool) {
	n := compileNFA(p)
	initial := n.closure([]int{n.start})
	if n.accepting(initial) {
		return nil, false // nullable: matches the empty path
	}
	set := map[string]bool{}
	for _, s := range initial {
		for _, tr := range n.trans[s] {
			if tr.pred.Op != PLabel {
				return nil, false
			}
			set[tr.pred.Label] = true
		}
	}
	if len(set) == 0 {
		return nil, false // no transitions: matches nothing, seeding moot
	}
	labels := make([]string, 0, len(set))
	for l := range set {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels, true
}

// Explain returns the evaluation plan of every block of q against src,
// without evaluating the query: per block, the scheduled condition
// order with access paths and cost estimates. Nested blocks inherit
// their ancestors' bound variables, exactly as evaluation would.
// The rendered form is stable and is pinned by golden tests.
func Explain(q *Query, src Source, opts *Options) (string, error) {
	ctx := newEvalCtx(src, opts, NewSkolemEnv())
	var b strings.Builder
	var walk func(blk *Block, path string, inherited []string) error
	walk = func(blk *Block, path string, inherited []string) error {
		fmt.Fprintf(&b, "block %s (line %d):\n", path, blk.Line)
		if len(blk.Where) == 0 {
			b.WriteString("  (no conditions)\n")
		} else {
			plan, err := ctx.orderConds(blk.Where, inherited)
			if err != nil {
				return err
			}
			b.WriteString(plan.Detail("  "))
		}
		// Variables visible to nested blocks: the inherited set plus this
		// block's bindings — or, after aggregation, the grouping variables
		// and aggregate results only.
		var next []string
		if len(blk.Aggregate) > 0 {
			next = append(next, blk.AggBy...)
			for _, a := range blk.Aggregate {
				next = append(next, a.As)
			}
		} else {
			set := map[string]bool{}
			for _, v := range inherited {
				set[v] = true
			}
			for _, c := range blk.Where {
				c.boundVars(set)
			}
			next = make([]string, 0, len(set))
			for v := range set {
				next = append(next, v)
			}
			sort.Strings(next)
		}
		for i, nb := range blk.Nested {
			if err := walk(nb, fmt.Sprintf("%s.%d", path, i+1), next); err != nil {
				return err
			}
		}
		return nil
	}
	for i, blk := range q.Blocks {
		if err := walk(blk, fmt.Sprintf("%d", i+1), nil); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}
