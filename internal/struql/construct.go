package struql

import "strudel/internal/graph"

// ConstructOnly runs one block's create, link, and collect clauses over an
// externally supplied binding relation, returning the constructed graph.
// It is the construction half of evalBlock split out for incremental view
// maintenance: a maintainer that tracks a block's where-relation row by
// row can re-derive the block's contribution to the site graph without
// re-evaluating the where clause.
//
// The binding relation must bind every variable the construction clauses
// reference. Skolem identity flows through env, so sharing the same
// environment with other evaluations keeps oids consistent; construction
// is idempotent under the graph's set semantics, so duplicate rows are
// harmless. Nested blocks are NOT descended into — each block's
// construction is applied to its own relation.
func ConstructOnly(blk *Block, b *Bindings, env *SkolemEnv) (*graph.Graph, error) {
	ctx := &evalCtx{out: graph.New(), env: env}
	if err := ctx.construct(blk, b); err != nil {
		return nil, err
	}
	return ctx.out, nil
}
