package struql

import (
	"strings"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/obs"
	"strudel/internal/repo"
)

func TestPlanStringForms(t *testing.T) {
	var nilPlan *Plan
	if got := nilPlan.String(); got != "empty" {
		t.Errorf("nil plan String = %q, want empty", got)
	}
	if got := (&Plan{}).String(); got != "empty" {
		t.Errorf("empty plan String = %q, want empty", got)
	}
	p := &Plan{Steps: []PlanStep{
		{Cond: "Items(x)", Index: 1, Access: AccessMemberScan + "[Items]", Cost: 3},
		{Cond: "y > 5", Index: 0, Access: AccessFilter, Cost: 0},
	}}
	if got := p.String(); got != `Items(x)[scan-coll[Items]]$3.0 ; y > 5[filter]$0.0` {
		t.Errorf("String = %q", got)
	}
	if p.Reordered() != 2 {
		t.Errorf("Reordered = %d, want 2", p.Reordered())
	}
	detail := p.Detail("  ")
	if !strings.Contains(detail, "(moved from #2)") || !strings.Contains(detail, "cost=3.0") {
		t.Errorf("Detail lacks move marker or cost:\n%s", detail)
	}
	p.Textual = true
	if s := p.String(); strings.Contains(s, "$") {
		t.Errorf("textual String should omit costs: %q", s)
	}
	if d := p.Detail(""); strings.Contains(d, "cost=") {
		t.Errorf("textual Detail should omit costs:\n%s", d)
	}
}

func TestExplainOutput(t *testing.T) {
	src := NewGraphSource(propertyGraph(12))
	q := MustParse(`create Root()
where Items(x), x -> "year" -> y, y > 1995
create N(x)
link Root() -> "n" -> N(x)
{ where x -> "kind" -> k link N(x) -> "k" -> k }`)
	text, err := Explain(q, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"(no conditions)",  // the Root() block has no where clause
		"scan-coll[Items]", // collection scan access path
		"seek-out[year]",   // label seek access path
		"filter",           // comparison
		"cost=",            // cost estimates present by default
		"block 2.1",        // nested block numbering
		"seek-out[kind]",   // nested block plans against inherited vars
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Explain output lacks %q:\n%s", want, text)
		}
	}
	textual, err := Explain(q, src, &Options{NoReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(textual, "cost=") {
		t.Errorf("NoReorder Explain should omit costs:\n%s", textual)
	}
	if _, err := Explain(q, src, &Options{NoStats: true}); err != nil {
		t.Fatalf("NoStats explain: %v", err)
	}
}

func TestExplainUnschedulable(t *testing.T) {
	q := &Query{Blocks: []*Block{{
		Where:  []Cond{&CmpCond{Op: CmpGt, L: VarTerm("y"), R: ConstTerm(graph.NewInt(3))}},
		Create: []SkolemTerm{{Fn: "N"}},
	}}}
	if _, err := Explain(q, NewGraphSource(propertyGraph(4)), nil); err == nil {
		t.Error("Explain of an unschedulable filter should fail")
	}
}

func TestExplainRPESeeding(t *testing.T) {
	src := repo.NewIndexed(propertyGraph(12))
	q := MustParse(`where Items(x), y -> "next"+ -> x create N(y)`)
	text, err := Explain(q, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, AccessRPESeed+"[next]") {
		t.Errorf("non-nullable RPE with unbound start should seed from the label extent:\n%s", text)
	}
	// A nullable expression matches the empty path, so every node is a
	// potential start: no seeding.
	q2 := MustParse(`where Items(x), y -> "next"* -> x create N(y)`)
	text2, err := Explain(q2, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text2, AccessRPESeed) {
		t.Errorf("nullable RPE must not seed:\n%s", text2)
	}
}

// TestPlannerMetrics checks the planner's observability counters: stats
// builds, index seeks, and reorder counts all tick during an evaluation
// that exercises them.
func TestPlannerMetrics(t *testing.T) {
	m := &obs.EvalMetrics{}
	src := repo.NewIndexed(propertyGraph(16))
	// Filter textually first: the planner must move it after its binder.
	q := MustParse(`where y > 1995, Items(x), x -> "year" -> y create N(x)`)
	if _, err := Eval(q, src, &Options{Metrics: m}); err != nil {
		t.Fatal(err)
	}
	if m.StatsBuilds.Load() == 0 {
		t.Error("no statistics build recorded")
	}
	if m.IndexSeeks.Load() == 0 {
		t.Error("no index seeks recorded")
	}
	if m.ReorderedConds.Load() == 0 {
		t.Error("no reordered conditions recorded")
	}
	snap := m.Snapshot()
	for _, key := range []string{"planner_stats_builds", "planner_index_seeks", "planner_reordered_conds"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("snapshot lacks %s", key)
		}
	}
}

// TestWarmStatsReuse pins the warm-statistics path: a caller-provided
// Stats is consulted instead of a fresh collection, and results are
// identical to the cold path.
func TestWarmStatsReuse(t *testing.T) {
	src := repo.NewIndexed(propertyGraph(16))
	warm := CollectStats(src)
	q := MustParse(`where Items(x), x -> "year" -> y, y > 1993 create N(x) link N(x) -> "y" -> y`)
	m := &obs.EvalMetrics{}
	hot, err := Eval(q, src, &Options{Stats: warm, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if m.StatsBuilds.Load() != 0 {
		t.Errorf("warm evaluation built statistics %d times, want 0", m.StatsBuilds.Load())
	}
	cold, err := Eval(q, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Graph.Dump() != cold.Graph.Dump() {
		t.Error("warm and cold statistics produced different graphs")
	}
}

// TestStatsAccessors covers the statistics accessors on both source
// kinds: the LabelStatser fast path (indexed repository) and the scan
// fallback (plain graph source).
func TestStatsAccessors(t *testing.T) {
	g := propertyGraph(12)
	for _, src := range []Source{NewGraphSource(g), repo.NewIndexed(g)} {
		s := CollectStats(src)
		year := s.Label("year")
		if year.Count != 12 || year.Sources != 12 {
			t.Errorf("%T: year stat = %+v, want 12 edges from 12 sources", src, year)
		}
		if s.FanOut(year) <= 0 || s.FanIn(year) <= 0 {
			t.Errorf("%T: year fan-out/fan-in not positive", src)
		}
		none := s.Label("no-such-label")
		if none.Count != 0 || s.FanOut(none) != 0 {
			t.Errorf("%T: unknown label stat = %+v", src, none)
		}
		if s.NumNodes == 0 || s.NumEdges == 0 {
			t.Errorf("%T: graph totals empty: %d nodes %d edges", src, s.NumNodes, s.NumEdges)
		}
	}
}

// TestIndexedLabelStats covers the repository's cached per-label
// statistics, including invalidation on mutation.
func TestIndexedLabelStats(t *testing.T) {
	g := graph.New()
	g.AddEdge("a", "t", graph.NewNode("b"))
	g.AddEdge("a", "t", graph.NewNode("c"))
	g.AddEdge("b", "t", graph.NewNode("c"))
	ix := repo.NewIndexed(g)
	count, sources, targets := ix.LabelStats("t")
	if count != 3 || sources != 2 || targets != 2 {
		t.Errorf("LabelStats(t) = %d,%d,%d, want 3,2,2", count, sources, targets)
	}
	// Cached: same answer again.
	if c2, _, _ := ix.LabelStats("t"); c2 != 3 {
		t.Errorf("cached count = %d, want 3", c2)
	}
	ix.AddEdge("c", "t", graph.NewNode("d"))
	count, sources, targets = ix.LabelStats("t")
	if count != 4 || sources != 3 || targets != 3 {
		t.Errorf("after mutation LabelStats(t) = %d,%d,%d, want 4,3,3", count, sources, targets)
	}
	if c, s2, tg := ix.LabelStats("absent"); c != 0 || s2 != 0 || tg != 0 {
		t.Errorf("LabelStats(absent) = %d,%d,%d, want zeros", c, s2, tg)
	}
}

func TestNaiveCmpOps(t *testing.T) {
	one, two := graph.NewInt(1), graph.NewInt(2)
	cases := []struct {
		op   CmpOp
		l, r graph.Value
		want bool
	}{
		{CmpEq, one, one, true}, {CmpEq, one, two, false},
		{CmpNeq, one, two, true}, {CmpNeq, one, one, false},
		{CmpLt, one, two, true}, {CmpLt, two, one, false},
		{CmpLe, one, one, true}, {CmpLe, two, one, false},
		{CmpGt, two, one, true}, {CmpGt, one, two, false},
		{CmpGe, one, one, true}, {CmpGe, one, two, false},
	}
	for _, c := range cases {
		if got := naiveCmp(c.op, c.l, c.r); got != c.want {
			t.Errorf("naiveCmp(%v, %v, %v) = %v, want %v", c.op, c.l, c.r, got, c.want)
		}
	}
}

// TestNaiveEvalWithEnvComposition runs a two-query composition through
// both evaluators with shared Skolem environments: later queries must
// re-derive the earlier query's nodes identically.
func TestNaiveEvalWithEnvComposition(t *testing.T) {
	g := propertyGraph(10)
	q1 := MustParse(`where Items(x) create Page(x) link Page(x) -> "self" -> x`)
	q2 := MustParse(`where Items(x), x -> "year" -> y create Page(x) link Page(x) -> "year" -> y`)

	naiveEnv := NewSkolemEnv()
	optEnv := NewSkolemEnv()
	naiveOut := graph.New()
	optOut := graph.New()
	for _, q := range []*Query{q1, q2} {
		nr, err := NaiveEvalWithEnv(q, NewGraphSource(g), naiveEnv)
		if err != nil {
			t.Fatal(err)
		}
		naiveOut.Merge(nr.Graph)
		or, err := EvalWithEnv(q, NewGraphSource(g), optEnv, nil)
		if err != nil {
			t.Fatal(err)
		}
		optOut.Merge(or.Graph)
	}
	if naiveOut.Dump() != optOut.Dump() {
		t.Error("composed naive and optimized evaluations diverged")
	}
}

// TestNaiveEvalErrors covers the reference evaluator's error paths —
// the same contracts the optimized evaluator enforces.
func TestNaiveEvalErrors(t *testing.T) {
	g := propertyGraph(6)
	// collect of an atom value
	q := &Query{Blocks: []*Block{{
		Where: []Cond{
			&MemberCond{Coll: "Items", Var: "x"},
			&PathCond{From: VarTerm("x"), Path: MustParsePathExpr(`"year"`), To: VarTerm("y")},
		},
		Collect: []CollectExpr{{Coll: "R", Target: LinkTerm{Term: termPtr(VarTerm("y"))}}},
	}}}
	if _, err := NaiveEval(q, NewGraphSource(g)); err == nil ||
		!strings.Contains(err.Error(), "collections contain objects") {
		t.Errorf("collect atom: err = %v", err)
	}
	// unschedulable filter
	q2 := &Query{Blocks: []*Block{{
		Where:  []Cond{&CmpCond{Op: CmpGt, L: VarTerm("w"), R: ConstTerm(graph.NewInt(0))}},
		Create: []SkolemTerm{{Fn: "N"}},
	}}}
	if _, err := NaiveEval(q2, NewGraphSource(g)); err == nil ||
		!strings.Contains(err.Error(), "cannot schedule conditions") {
		t.Errorf("unschedulable: err = %v", err)
	}
}

func termPtr(t Term) *Term { return &t }
