package struql

import (
	"fmt"
	"strings"
	"testing"

	"strudel/internal/graph"
)

// fig2Graph builds the Fig. 2 data-graph fragment.
func fig2Graph() *graph.Graph {
	g := graph.New()
	g.AddToCollection("Publications", "pub1")
	g.AddToCollection("Publications", "pub2")
	g.AddEdge("pub1", "title", graph.NewString("A Query Language for Web-Sites"))
	g.AddEdge("pub1", "author", graph.NewString("Fernandez"))
	g.AddEdge("pub1", "author", graph.NewString("Florescu"))
	g.AddEdge("pub1", "year", graph.NewInt(1997))
	g.AddEdge("pub1", "month", graph.NewString("September"))
	g.AddEdge("pub1", "journal", graph.NewString("SIGMOD Record"))
	g.AddEdge("pub1", "category", graph.NewString("websites"))
	g.AddEdge("pub2", "title", graph.NewString("Catching the Boat with Strudel"))
	g.AddEdge("pub2", "author", graph.NewString("Fernandez"))
	g.AddEdge("pub2", "year", graph.NewInt(1998))
	g.AddEdge("pub2", "booktitle", graph.NewString("SIGMOD"))
	g.AddEdge("pub2", "category", graph.NewString("websites"))
	g.AddEdge("pub2", "category", graph.NewString("semistructured"))
	return g
}

func evalOn(t *testing.T, q string, g *graph.Graph) *Result {
	t.Helper()
	r, err := Eval(MustParse(q), NewGraphSource(g), nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEvalFig3ProducesFig4SiteGraph(t *testing.T) {
	r := evalOn(t, fig3Query, fig2Graph())
	site := r.Graph
	// Two year pages, one per distinct year.
	if !site.HasNode("YearPage(1997)") || !site.HasNode("YearPage(1998)") {
		t.Fatalf("year pages missing; nodes: %v", site.Nodes())
	}
	// Root links to both year pages and to the abstracts page.
	if !site.HasEdge("RootPage()", "YearPage", graph.NewNode("YearPage(1997)")) {
		t.Error("RootPage should link to YearPage(1997)")
	}
	if !site.HasEdge("RootPage()", "Abstracts", graph.NewNode("AbstractsPage()")) {
		t.Error("RootPage should link to AbstractsPage")
	}
	// Year pages link to the papers of that year only.
	if !site.HasEdge("YearPage(1997)", "Paper", graph.NewNode("PaperPresentation(pub1)")) {
		t.Error("YearPage(1997) should present pub1")
	}
	if site.HasEdge("YearPage(1997)", "Paper", graph.NewNode("PaperPresentation(pub2)")) {
		t.Error("YearPage(1997) must not present pub2")
	}
	// Category pages: "websites" presents both publications.
	if !site.HasEdge("CategoryPage(websites)", "Paper", graph.NewNode("PaperPresentation(pub1)")) ||
		!site.HasEdge("CategoryPage(websites)", "Paper", graph.NewNode("PaperPresentation(pub2)")) {
		t.Error("CategoryPage(websites) should present both pubs")
	}
	if !site.HasNode("CategoryPage(semistructured)") {
		t.Error("CategoryPage(semistructured) missing")
	}
	// Arc variables copied every attribute of pub1 into its presentation.
	if !site.HasEdge("PaperPresentation(pub1)", "journal", graph.NewString("SIGMOD Record")) {
		t.Error("attribute copy via arc variable failed (journal)")
	}
	if !site.HasEdge("PaperPresentation(pub2)", "booktitle", graph.NewString("SIGMOD")) {
		t.Error("attribute copy via arc variable failed (booktitle)")
	}
	// Irregularity carries over: pub2 has no month edge.
	if len(site.OutLabel("PaperPresentation(pub2)", "month")) != 0 {
		t.Error("pub2 presentation should not have month")
	}
	// Presentation links to its abstract page.
	if !site.HasEdge("PaperPresentation(pub1)", "Abstract", graph.NewNode("AbstractPage(pub1)")) {
		t.Error("presentation → abstract page link missing")
	}
}

func TestEvalSkolemIdentity(t *testing.T) {
	// The same Skolem application in different clauses yields one node:
	// YearPage(y) for equal y across publications in the same year.
	g := fig2Graph()
	g.AddEdge("pub3", "year", graph.NewInt(1997))
	g.AddEdge("pub3", "title", graph.NewString("third"))
	g.AddToCollection("Publications", "pub3")
	r := evalOn(t, fig3Query, g)
	count := 0
	for _, n := range r.Graph.Nodes() {
		if strings.HasPrefix(string(n), "YearPage(") {
			count++
		}
	}
	if count != 2 {
		t.Errorf("distinct year pages = %d, want 2 (1997 shared)", count)
	}
	papers := r.Graph.OutLabel("YearPage(1997)", "Paper")
	if len(papers) != 2 {
		t.Errorf("YearPage(1997) papers = %d, want 2", len(papers))
	}
}

// textOnlyQuery is the §2.2 copy query: it copies the subgraph reachable
// from the root, dropping edges that lead to image files.
const textOnlyQuery = `
where Root(p), p -> * -> q, isNode(q)
create New(q)
collect TextOnlyRoot(New(p))
{
  where q -> l -> q2, isNode(q2)
  link New(q) -> l -> New(q2)
}
{
  where q -> l -> q2, isAtom(q2), not(isImageFile(q2))
  link New(q) -> l -> q2
}
`

func textOnlyGraph() *graph.Graph {
	g := graph.New()
	g.AddToCollection("Root", "home")
	g.AddEdge("home", "news", graph.NewNode("article"))
	g.AddEdge("home", "logo", graph.NewFile(graph.FileImage, "logo.gif"))
	g.AddEdge("article", "text", graph.NewFile(graph.FileText, "body.txt"))
	g.AddEdge("article", "photo", graph.NewFile(graph.FileImage, "photo.jpg"))
	g.AddEdge("article", "title", graph.NewString("Headline"))
	g.AddEdge("article", "back", graph.NewNode("home"))
	g.AddEdge("orphan", "x", graph.NewString("unreachable"))
	return g
}

func TestEvalTextOnlyCopy(t *testing.T) {
	r := evalOn(t, textOnlyQuery, textOnlyGraph())
	site := r.Graph
	if !site.HasEdge("New(home)", "news", graph.NewNode("New(article)")) {
		t.Error("node-to-node edge not copied")
	}
	if !site.HasEdge("New(article)", "title", graph.NewString("Headline")) {
		t.Error("string atom not copied")
	}
	if !site.HasEdge("New(article)", "text", graph.NewFile(graph.FileText, "body.txt")) {
		t.Error("text file not copied")
	}
	if site.HasEdge("New(article)", "photo", graph.NewFile(graph.FileImage, "photo.jpg")) {
		t.Error("image file should be excluded")
	}
	if site.HasEdge("New(home)", "logo", graph.NewFile(graph.FileImage, "logo.gif")) {
		t.Error("image logo should be excluded")
	}
	if !site.HasEdge("New(article)", "back", graph.NewNode("New(home)")) {
		t.Error("cycle edge not copied")
	}
	if site.HasNode("New(orphan)") {
		t.Error("unreachable node should not be copied")
	}
	roots := site.Collection("TextOnlyRoot")
	if len(roots) != 1 || roots[0] != "New(home)" {
		t.Errorf("TextOnlyRoot = %v", roots)
	}
}

func TestEvalKleeneStarIncludesStart(t *testing.T) {
	// p -> * -> q matches the empty path, so q includes p itself.
	g := graph.New()
	g.AddToCollection("Root", "r")
	g.AddEdge("r", "a", graph.NewNode("s"))
	b, err := EvalWhere(MustParse(`where Root(p), p -> * -> q, isNode(q) create N(q)`).Blocks[0].Where,
		NewGraphSource(g), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (r and s)", len(b.Rows))
	}
}

func TestEvalRegularPathExpressions(t *testing.T) {
	g := graph.New()
	g.AddToCollection("Start", "a")
	g.AddEdge("a", "x", graph.NewNode("b"))
	g.AddEdge("b", "y", graph.NewNode("c"))
	g.AddEdge("c", "x", graph.NewNode("d"))
	g.AddEdge("a", "z", graph.NewNode("e"))
	g.AddEdge("d", "final", graph.NewString("leaf"))
	src := NewGraphSource(g)
	cases := []struct {
		path string
		want []string // expected q bindings (node oids or atom texts)
	}{
		{`"x"`, []string{"b"}},
		{`"x"."y"`, []string{"c"}},
		{`"x"|"z"`, []string{"b", "e"}},
		{`("x"|"y")*`, []string{"a", "b", "c", "d"}},
		{`_`, []string{"b", "e"}},
		{`_._`, []string{"c"}},
		{`"x"?`, []string{"a", "b"}},
		{`("x"|"y")+`, []string{"b", "c", "d"}},
		{`~"x|z"`, []string{"b", "e"}},
		{`("x"|"y")*."final"`, []string{"leaf"}},
	}
	for _, c := range cases {
		q := MustParse(fmt.Sprintf(`where Start(p), p -> %s -> q create N(q)`, c.path))
		b, err := EvalWhere(q.Blocks[0].Where, src, nil, nil)
		if err != nil {
			t.Errorf("%s: %v", c.path, err)
			continue
		}
		qi := b.Index("q")
		var got []string
		for _, row := range b.Rows {
			got = append(got, row[qi].Text())
		}
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("path %s: q = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestEvalComparisonsAndPredicates(t *testing.T) {
	g := fig2Graph()
	r := evalOn(t, `where Publications(x), x -> "year" -> y, y > 1997 create Recent(x)`, g)
	if r.Graph.HasNode("Recent(pub1)") || !r.Graph.HasNode("Recent(pub2)") {
		t.Errorf("year filter wrong: %v", r.Graph.Nodes())
	}
	// String/number coercion in comparisons.
	g2 := graph.New()
	g2.AddToCollection("C", "n")
	g2.AddEdge("n", "year", graph.NewString("1998"))
	r2 := evalOn(t, `where C(x), x -> "year" -> y, y = 1998 create M(x)`, g2)
	if !r2.Graph.HasNode("M(n)") {
		t.Error("string '1998' should equal int 1998 by dynamic coercion")
	}
}

func TestEvalNegationJoins(t *testing.T) {
	// Publications with no booktitle attribute (journal papers).
	r := evalOn(t, `where Publications(x), not(x -> "booktitle" -> b) create J(x)`, fig2Graph())
	if !r.Graph.HasNode("J(pub1)") || r.Graph.HasNode("J(pub2)") {
		t.Errorf("negation wrong: %v", r.Graph.Nodes())
	}
}

func TestEvalNegationSharedVars(t *testing.T) {
	// Authors of pub1 who are not authors of pub2.
	r := evalOn(t, `where &pub1 -> "author" -> a, not(&pub2 -> "author" -> a) create Only1(a)`, fig2Graph())
	if !r.Graph.HasNode("Only1(Florescu)") {
		t.Error("Florescu authors only pub1")
	}
	if r.Graph.HasNode("Only1(Fernandez)") {
		t.Error("Fernandez authors both")
	}
}

func TestEvalArcVariableBindsSchema(t *testing.T) {
	// Arc variables range over the schema: collect attribute names.
	b, err := EvalWhere(MustParse(`where Publications(x), x -> l -> v create N(x)`).Blocks[0].Where,
		NewGraphSource(fig2Graph()), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	li := b.Index("l")
	labels := map[string]bool{}
	for _, row := range b.Rows {
		labels[row[li].Text()] = true
	}
	for _, want := range []string{"title", "author", "year", "month", "journal", "booktitle", "category"} {
		if !labels[want] {
			t.Errorf("label %s not bound by arc variable", want)
		}
	}
}

func TestEvalLabelComparison(t *testing.T) {
	// Copy all attributes except category (template-level exclusion in
	// StruQL instead of templates).
	r := evalOn(t, `where Publications(x), x -> l -> v, l != "category" create P(x) link P(x) -> l -> v`, fig2Graph())
	if r.Graph.HasEdge("P(pub1)", "category", graph.NewString("websites")) {
		t.Error("category should be excluded")
	}
	if !r.Graph.HasEdge("P(pub1)", "title", graph.NewString("A Query Language for Web-Sites")) {
		t.Error("title should be copied")
	}
}

func TestEvalWhereLessBlock(t *testing.T) {
	r := evalOn(t, `create Home() link Home() -> "msg" -> Home()`, graph.New())
	if !r.Graph.HasEdge("Home()", "msg", graph.NewNode("Home()")) {
		t.Error("where-less block failed")
	}
}

func TestEvalConstTargets(t *testing.T) {
	r := evalOn(t, `where Publications(x), x -> "year" -> 1997 create Y97(x)`, fig2Graph())
	if !r.Graph.HasNode("Y97(pub1)") || r.Graph.HasNode("Y97(pub2)") {
		t.Errorf("const target filter wrong: %v", r.Graph.Nodes())
	}
}

func TestEvalNodeConstant(t *testing.T) {
	r := evalOn(t, `where &pub1 -> "author" -> a create A(a)`, fig2Graph())
	if !r.Graph.HasNode("A(Fernandez)") || !r.Graph.HasNode("A(Florescu)") {
		t.Errorf("node constant source failed: %v", r.Graph.Nodes())
	}
}

func TestEvalSeqComposition(t *testing.T) {
	// Second query navigates the graph built by the first, adding a nav
	// bar to every page (the suciu example's last step, §5.1).
	q1 := MustParse(`where Publications(x) create Page(x) link Page(x) -> "self" -> x collect Pages(Page(x))`)
	q2 := MustParse(`where Pages(p) create NavBar() link NavBar() -> "target" -> p`)
	got, err := EvalSeq([]*Query{q1, q2}, NewGraphSource(fig2Graph()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasEdge("NavBar()", "target", graph.NewNode("Page(pub1)")) ||
		!got.HasEdge("NavBar()", "target", graph.NewNode("Page(pub2)")) {
		t.Errorf("composition failed:\n%s", got.Dump())
	}
}

func TestEvalSeededWhere(t *testing.T) {
	// The dynamic evaluator's entry point: bind x and evaluate the rest.
	seed := &Bindings{Vars: []string{"x"}, Rows: [][]graph.Value{{graph.NewNode("pub1")}}}
	b, err := EvalWhere(MustParse(`where Publications(x), x -> "author" -> a create N(a)`).Blocks[0].Where,
		NewGraphSource(fig2Graph()), seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 2 {
		t.Errorf("seeded rows = %d, want 2 (authors of pub1 only)", len(b.Rows))
	}
}

func TestEvalOptimizerMatchesTextualOrder(t *testing.T) {
	// The planner must not change query semantics.
	queries := []string{
		fig3Query,
		textOnlyQuery,
		`where Publications(x), x -> "year" -> y, y > 1996, x -> "author" -> a create N(x, a)`,
		`where Publications(x), not(x -> "month" -> m), x -> l -> v create P(x) link P(x) -> l -> v`,
		`where a -> "author" -> w, b -> "author" -> w, a != b create Pair(a, b)`,
	}
	src := NewGraphSource(fig2Graph())
	src2 := NewGraphSource(textOnlyGraph())
	for _, qs := range queries {
		q := MustParse(qs)
		for _, s := range []Source{src, src2} {
			opt, err := Eval(q, s, nil)
			if err != nil {
				t.Fatalf("%s: %v", qs[:30], err)
			}
			txt, err := Eval(q, s, &Options{NoReorder: true})
			if err != nil {
				t.Fatalf("%s: %v", qs[:30], err)
			}
			if opt.Graph.Dump() != txt.Graph.Dump() {
				t.Errorf("optimizer changed semantics for query:\n%s\n--- optimized\n%s--- textual\n%s",
					qs, opt.Graph.Dump(), txt.Graph.Dump())
			}
		}
	}
}

func TestEvalSelfJoin(t *testing.T) {
	// Pairs of distinct publications sharing an author.
	r := evalOn(t, `where a -> "author" -> w, b -> "author" -> w, a != b create Pair(a, b)`, fig2Graph())
	if !r.Graph.HasNode("Pair(pub1,pub2)") || !r.Graph.HasNode("Pair(pub2,pub1)") {
		t.Errorf("self join failed: %v", r.Graph.Nodes())
	}
}

func TestEvalRowsCounted(t *testing.T) {
	r := evalOn(t, `where Publications(x) create N(x)`, fig2Graph())
	if r.Rows != 2 {
		t.Errorf("Rows = %d, want 2", r.Rows)
	}
	if len(r.Plan) == 0 {
		t.Error("plan should be recorded")
	}
}

func TestEvalCollectAtomFails(t *testing.T) {
	_, err := Eval(MustParse(`where Publications(x), x -> "year" -> y create N(x) collect Years(y)`),
		NewGraphSource(fig2Graph()), nil)
	if err == nil || !strings.Contains(err.Error(), "collections contain objects") {
		t.Errorf("collect of atom: err = %v", err)
	}
}

func TestEvalEmptyCollection(t *testing.T) {
	r := evalOn(t, `where NoSuch(x) create N(x)`, fig2Graph())
	if r.Graph.NumNodes() != 0 {
		t.Errorf("empty collection should yield nothing, got %v", r.Graph.Nodes())
	}
}

func TestSkolemEnvIdentityAndInjectivity(t *testing.T) {
	env := NewSkolemEnv()
	a := env.OID("F", []graph.Value{graph.NewString("x")})
	b := env.OID("F", []graph.Value{graph.NewString("x")})
	if a != b {
		t.Error("same inputs must give same oid")
	}
	// Different values with colliding display text must stay distinct.
	c := env.OID("F", []graph.Value{graph.NewString("a,b")})
	d := env.OID("F", []graph.Value{graph.NewString("a(b")})
	if c == d {
		t.Errorf("sanitization collision not disambiguated: %s vs %s", c, d)
	}
	// Int 1 and string "1" are distinct Skolem inputs.
	e := env.OID("F", []graph.Value{graph.NewInt(1)})
	f := env.OID("F", []graph.Value{graph.NewString("1")})
	if e == f {
		t.Error("int and string args must produce distinct oids")
	}
	if env.Size() != 5 {
		t.Errorf("Size = %d, want 5", env.Size())
	}
}

func TestSkolemLongArgsTruncated(t *testing.T) {
	env := NewSkolemEnv()
	long := strings.Repeat("verylong", 20)
	oid := env.OID("F", []graph.Value{graph.NewString(long)})
	if len(oid) > 80 {
		t.Errorf("oid too long: %d chars", len(oid))
	}
	again := env.OID("F", []graph.Value{graph.NewString(long)})
	if oid != again {
		t.Error("truncated oid identity broken")
	}
}
