package struql

import (
	"errors"
	"fmt"
	"testing"

	"strudel/internal/graph"
)

func TestChunkBounds(t *testing.T) {
	cases := []struct {
		n, workers int
	}{
		{0, 4}, {1, 4}, {3, 4}, {4, 4}, {10, 3}, {64, 8}, {65, 8}, {100, 7},
	}
	for _, c := range cases {
		bounds := chunkBounds(c.n, c.workers)
		if len(bounds) > c.workers {
			t.Errorf("chunkBounds(%d, %d): %d chunks > %d workers", c.n, c.workers, len(bounds), c.workers)
		}
		// Chunks must tile [0, n) contiguously in order.
		next := 0
		for _, b := range bounds {
			if b[0] != next || b[1] < b[0] {
				t.Fatalf("chunkBounds(%d, %d) = %v: not a contiguous tiling", c.n, c.workers, bounds)
			}
			next = b[1]
		}
		if next != c.n {
			t.Errorf("chunkBounds(%d, %d) covers [0, %d), want [0, %d)", c.n, c.workers, next, c.n)
		}
		// Near-equal sizes: max and min differ by at most one.
		min, max := c.n, 0
		for _, b := range bounds {
			if s := b[1] - b[0]; s < min {
				min = s
			} else if s > max {
				max = s
			}
		}
		if len(bounds) > 0 && max-min > 1 {
			t.Errorf("chunkBounds(%d, %d) = %v: chunk sizes differ by more than one", c.n, c.workers, bounds)
		}
	}
}

func TestRowMapOrderAndErrors(t *testing.T) {
	rows := make([][]graph.Value, 200)
	for i := range rows {
		rows[i] = []graph.Value{graph.NewInt(int64(i))}
	}
	ctx := &evalCtx{par: 8}
	out, err := ctx.rowMap(rows, func(_ int, chunk [][]graph.Value) ([][]graph.Value, error) {
		res := make([][]graph.Value, 0, len(chunk))
		for _, r := range chunk {
			if r[0].Int()%3 == 0 { // filter, as the per-row operators do
				continue
			}
			res = append(res, r)
		}
		return res, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range out {
		for r[0].Int() >= int64(want) && want%3 == 0 {
			want++
		}
		if r[0].Int() != int64(want) {
			t.Fatalf("output out of input order: got %d, want %d", r[0].Int(), want)
		}
		want++
	}
	if len(out) != 133 {
		t.Errorf("filtered rows = %d, want 133", len(out))
	}

	// The reported error is the first failing chunk in input order, no
	// matter which goroutine finishes first.
	for trial := 0; trial < 20; trial++ {
		_, err := ctx.rowMap(rows, func(w int, chunk [][]graph.Value) ([][]graph.Value, error) {
			if w >= 2 {
				return nil, fmt.Errorf("chunk %d failed", w)
			}
			return chunk, nil
		})
		if err == nil || err.Error() != "chunk 2 failed" {
			t.Fatalf("trial %d: err = %v, want chunk 2 failed", trial, err)
		}
	}
}

func TestRowMapSequentialFastPath(t *testing.T) {
	rows := make([][]graph.Value, 10) // below minParallelRows
	ctx := &evalCtx{par: 8}
	calls := 0
	if _, err := ctx.rowMap(rows, func(w int, chunk [][]graph.Value) ([][]graph.Value, error) {
		calls++
		if w != 0 || len(chunk) != len(rows) {
			t.Errorf("fast path got worker %d, %d rows", w, len(chunk))
		}
		return chunk, nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("fast path made %d calls, want 1", calls)
	}
	wantErr := errors.New("boom")
	ctx = &evalCtx{par: 1}
	if _, err := ctx.rowMap(make([][]graph.Value, 100), func(int, [][]graph.Value) ([][]graph.Value, error) {
		return nil, wantErr
	}); !errors.Is(err, wantErr) {
		t.Errorf("sequential error = %v, want %v", err, wantErr)
	}
}

// TestEvalParallelDeterminism runs a query that exercises every
// parallelized operator — edges, arc variables, path expressions,
// comparisons, negation, dedup — over a relation large enough to cross
// minParallelRows, and requires the eight-worker result graph to dump
// byte-identically to the sequential one.
func TestEvalParallelDeterminism(t *testing.T) {
	g := graph.New()
	for i := 0; i < 300; i++ {
		oid := graph.OID(fmt.Sprintf("p%03d", i))
		g.AddToCollection("Pubs", oid)
		g.AddEdge(oid, "title", graph.NewString(fmt.Sprintf("Paper %d", i)))
		g.AddEdge(oid, "year", graph.NewInt(int64(1990+i%10)))
		if i%4 != 0 {
			g.AddEdge(oid, "cat", graph.NewString(fmt.Sprintf("area%d", i%5)))
		}
		if i > 0 {
			g.AddEdge(graph.OID(fmt.Sprintf("p%03d", i-1)), "next", graph.NewNode(oid))
		}
	}
	q := MustParse(`
where Pubs(x), x -> "year" -> y, y > 1993, not(x -> "cat" -> "area0"),
      x -> "next"* -> z, z -> l -> v, isAtom(v)
create N(x, y)
link N(x, y) -> l -> v, N(x, y) -> "year" -> y
`)
	src := NewGraphSource(g)
	seq, err := Eval(q, src, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Eval(q, src, &Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Graph.Dump() != par.Graph.Dump() {
		t.Error("result graphs differ between Parallelism 1 and 8")
	}
	if seq.Rows != par.Rows {
		t.Errorf("row counts differ: sequential %d, parallel %d", seq.Rows, par.Rows)
	}
}
