package struql

import "fmt"

// Guard limits a ResourceExhausted error names.
const (
	LimitRows      = "rows"
	LimitNFAStates = "nfa-states"
	LimitDeadline  = "deadline"
)

// ResourceExhausted is the typed error evaluation returns when a
// resource guard trips: the binding relation outgrew Options.MaxRows, a
// path condition's product automaton visited more than
// Options.MaxNFAStates states, or the Options.Deadline passed. It turns
// a pathological query — a cross product, a runaway closure — from a
// hang or an OOM kill into a diagnosable failure.
type ResourceExhausted struct {
	// Limit is which guard tripped: LimitRows, LimitNFAStates, or
	// LimitDeadline.
	Limit string
	// Used and Max are the observed and configured values (zero for
	// LimitDeadline, where the wall clock is the measure).
	Used int
	Max  int
}

func (e *ResourceExhausted) Error() string {
	if e.Limit == LimitDeadline {
		return "struql: evaluation deadline exceeded"
	}
	return fmt.Sprintf("struql: evaluation exceeded the %s limit (%d > %d)", e.Limit, e.Used, e.Max)
}
