package htmlgen

import "strconv"

// PageHash returns a short, stable content hash of one rendered page —
// FNV-64a in unpadded hex. It is the entity half of the serving tier's
// ETags: an edge tag is "g<generation>-<PageHash(body)>", so the tag
// changes whenever either the data generation or the page bytes do.
// Collision quality only has to support cache validation ("did these
// bytes change"), not integrity, which is why a cryptographic hash would
// be wasted here.
func PageHash(body string) string {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(body); i++ {
		h ^= uint64(body[i])
		h *= prime64
	}
	return strconv.FormatUint(h, 16)
}
