package htmlgen

import "testing"

func TestPageHash(t *testing.T) {
	// Deterministic across calls, sensitive to any byte, and compact
	// enough to live inside an ETag.
	a, b := PageHash("<html>one</html>"), PageHash("<html>one</html>")
	if a != b {
		t.Fatalf("PageHash not deterministic: %q vs %q", a, b)
	}
	if PageHash("<html>one</html>") == PageHash("<html>one!</html>") {
		t.Fatal("PageHash collided on a one-byte difference")
	}
	if PageHash("") == PageHash("x") {
		t.Fatal("PageHash collided on empty vs non-empty")
	}
	for _, c := range a {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Fatalf("PageHash %q is not lowercase hex", a)
		}
	}
	if len(a) == 0 || len(a) > 16 {
		t.Fatalf("PageHash %q: want 1-16 hex chars (unpadded 64-bit)", a)
	}
}
