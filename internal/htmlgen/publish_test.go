package htmlgen

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"strudel/internal/faultfs"
	"strudel/internal/fsx"
)

func outputWith(pages map[string]string) *Output {
	return &Output{Pages: pages}
}

func readDirPages(t *testing.T, dir string) map[string]string {
	t.Helper()
	got := map[string]string{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		got[filepath.ToSlash(rel)] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestWriteDirRejectsEscapingNames(t *testing.T) {
	cases := []struct {
		name   string
		reason string
	}{
		{"", "empty"},
		{"/etc/passwd", "absolute path"},
		{"../outside.html", "escapes the output directory"},
		{"a/../../outside.html", "escapes the output directory"},
		{"..", "escapes the output directory"},
	}
	for _, c := range cases {
		o := outputWith(map[string]string{c.name: "x", "ok.html": "y"})
		dir := filepath.Join(t.TempDir(), "site")
		err := o.WriteDir(dir)
		var pe *PageNameError
		if !errors.As(err, &pe) {
			t.Errorf("%q: err = %v, want *PageNameError", c.name, err)
			continue
		}
		if pe.Name != c.name || pe.Reason != c.reason {
			t.Errorf("%q: got %q/%q, want reason %q", c.name, pe.Name, pe.Reason, c.reason)
		}
		// Validation must precede any write: not even the good page lands.
		if _, err := os.Stat(dir); !os.IsNotExist(err) {
			t.Errorf("%q: output dir was created despite bad name", c.name)
		}
	}
}

func TestWriteDirCreatesNestedSubdirs(t *testing.T) {
	o := outputWith(map[string]string{
		"index.html":          "top",
		"papers/p1.html":      "one",
		"papers/deep/p2.html": "two",
	})
	dir := filepath.Join(t.TempDir(), "site")
	if err := o.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	got := readDirPages(t, dir)
	if len(got) != 3 || got["papers/deep/p2.html"] != "two" {
		t.Fatalf("written tree = %v", got)
	}
}

func TestPublishFreshAndReplace(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "site")
	v1 := outputWith(map[string]string{"index.html": "v1"})
	if err := v1.Publish(fsx.OS, dir, nil); err != nil {
		t.Fatal(err)
	}
	if got := readDirPages(t, dir); got["index.html"] != "v1" {
		t.Fatalf("after first publish: %v", got)
	}
	v2 := outputWith(map[string]string{"index.html": "v2", "new.html": "n"})
	if err := v2.Publish(fsx.OS, dir, nil); err != nil {
		t.Fatal(err)
	}
	if got := readDirPages(t, dir); got["index.html"] != "v2" || got["new.html"] != "n" {
		t.Fatalf("after second publish: %v", got)
	}
	// The previous generation is retained for rollback.
	if got := readDirPages(t, dir+".prev"); got["index.html"] != "v1" {
		t.Fatalf(".prev = %v", got)
	}
}

func TestPublishVerifyVeto(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "site")
	if err := outputWith(map[string]string{"index.html": "old"}).Publish(fsx.OS, dir, nil); err != nil {
		t.Fatal(err)
	}
	veto := errors.New("constraint violated")
	var sawStage string
	err := outputWith(map[string]string{"index.html": "new"}).Publish(fsx.OS, dir,
		func(stage string) error { sawStage = stage; return veto })
	if !errors.Is(err, veto) {
		t.Fatalf("err = %v, want the veto", err)
	}
	if sawStage == "" {
		t.Error("verify did not receive the stage path")
	}
	if _, err := os.Stat(sawStage); !os.IsNotExist(err) {
		t.Error("stage dir not cleaned up after veto")
	}
	if got := readDirPages(t, dir); got["index.html"] != "old" {
		t.Fatalf("published dir changed despite veto: %v", got)
	}
}

// TestPublishFaultsKeepOldGeneration: inject a failure into every write
// and rename the publish performs, one at a time, and check the invariant
// the chaos suite asserts at scale — the published directory is always
// the complete old site or the complete new one.
func TestPublishFaultsKeepOldGeneration(t *testing.T) {
	newOut := outputWith(map[string]string{"index.html": "new", "a.html": "na", "b.html": "nb"})
	for fault := 1; fault <= 8; fault++ {
		for _, kind := range []string{"write", "shortwrite", "rename", "sync"} {
			base := t.TempDir()
			dir := filepath.Join(base, "site")
			if err := outputWith(map[string]string{"index.html": "old", "a.html": "oa"}).Publish(fsx.OS, dir, nil); err != nil {
				t.Fatal(err)
			}
			ffs := &faultfs.FS{Inner: fsx.OS}
			switch kind {
			case "write":
				ffs.FailWriteN = fault
			case "shortwrite":
				ffs.ShortWriteN = fault
			case "rename":
				ffs.FailRenameN = fault
			case "sync":
				ffs.FailSyncN = fault
			}
			err := newOut.Publish(ffs, dir, nil)
			got := readDirPages(t, dir)
			oldSite := len(got) == 2 && got["index.html"] == "old" && got["a.html"] == "oa"
			newSite := len(got) == 3 && got["index.html"] == "new" && got["a.html"] == "na" && got["b.html"] == "nb"
			if err != nil && !errors.Is(err, faultfs.ErrInjected) {
				t.Errorf("%s/%d: unexpected error %v", kind, fault, err)
			}
			if err != nil && !oldSite && kind != "sync" {
				t.Errorf("%s/%d: failed publish left dir in state %v", kind, fault, got)
			}
			if err == nil && !newSite {
				t.Errorf("%s/%d: successful publish left dir in state %v", kind, fault, got)
			}
		}
	}
}
