// Package htmlgen is Strudel's HTML generator (§2.4): it takes a site
// graph and a set of HTML templates and produces the browsable web site.
//
// For every internal object the generator selects a template: (1) an
// object-specific template, (2) the value of the object's HTML-template
// attribute, or (3) the template associated with a collection the object
// belongs to; a built-in attribute-listing template is the last resort.
// Whether an object is realized as its own page or embedded into pages
// that refer to it is decided here, at generation time, by how templates
// reference it: plain references become links (and schedule the target as
// a page); EMBED references inline the object's rendering.
package htmlgen

import (
	"fmt"
	"html"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"strudel/internal/graph"
	"strudel/internal/template"
)

// Generator renders a site graph to HTML pages.
type Generator struct {
	Site      *graph.Graph
	Templates *template.Set
	// PerObject maps an oid to a template name (selection rule 1).
	PerObject map[graph.OID]string
	// PerPrefix maps an oid prefix (typically a Skolem function, e.g.
	// "YearPage(") to a template name; the longest matching prefix wins.
	// Checked after PerObject and before the HTML-template attribute.
	PerPrefix map[string]string
	// TemplateAttr is the attribute consulted by selection rule 2;
	// defaults to "HTML-template".
	TemplateAttr string
	// PerCollection maps a collection name to a template name (rule 3).
	PerCollection map[string]string
	// Default names a template used when no rule matches; when empty, a
	// built-in attribute listing is used.
	Default string
	// ReadFile resolves file atoms for EMBED; defaults to os.ReadFile.
	ReadFile func(path string) ([]byte, error)
}

// New returns a generator over the site graph and templates.
func New(site *graph.Graph, ts *template.Set) *Generator {
	return &Generator{
		Site:          site,
		Templates:     ts,
		PerObject:     map[graph.OID]string{},
		PerPrefix:     map[string]string{},
		PerCollection: map[string]string{},
		TemplateAttr:  "HTML-template",
		ReadFile:      os.ReadFile,
	}
}

// Output is a generated site: page file names and their HTML.
type Output struct {
	// Pages maps file name → HTML text.
	Pages map[string]string
	// PageFiles maps realized object → its file name.
	PageFiles map[graph.OID]string
	// Contributors maps each page's object to every object whose content
	// flowed into that page (itself, embedded objects, and objects whose
	// attributes supplied anchor text). Incremental regeneration uses it
	// to find the pages a site-graph change dirties.
	Contributors map[graph.OID][]graph.OID
}

// WriteDir writes every page into dir, creating it as needed.
func (o *Output) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("htmlgen: %w", err)
	}
	for name, content := range o.Pages {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return fmt.Errorf("htmlgen: write %s: %w", name, err)
		}
	}
	return nil
}

// PageCount returns the number of generated pages.
func (o *Output) PageCount() int { return len(o.Pages) }

// Generate renders the site starting from the root objects. The first
// root becomes index.html. Every object referenced without EMBED from a
// rendered page becomes a page of its own.
func (g *Generator) Generate(roots []graph.OID) (*Output, error) {
	out := &Output{
		Pages:        map[string]string{},
		PageFiles:    map[graph.OID]string{},
		Contributors: map[graph.OID][]graph.OID{},
	}
	st := &genState{g: g, out: out, usedNames: map[string]bool{}}
	for i, r := range roots {
		if !g.Site.HasNode(r) {
			return nil, fmt.Errorf("htmlgen: root %s is not in the site graph", r)
		}
		if i == 0 {
			st.fileFor(r, "index.html")
		}
		st.schedule(r)
	}
	for len(st.queue) > 0 {
		oid := st.queue[0]
		st.queue = st.queue[1:]
		if err := st.renderPage(oid); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Regenerate re-renders only the pages dirtied by the given changed
// site-graph objects (the pages of those objects plus every page they
// contributed content to), replacing them in the output in place. New
// objects referenced by re-rendered pages are generated as usual.
func (g *Generator) Regenerate(out *Output, changed []graph.OID) (pagesRedone int, err error) {
	changedSet := map[graph.OID]bool{}
	for _, c := range changed {
		changedSet[c] = true
	}
	dirty := map[graph.OID]bool{}
	for page, contribs := range out.Contributors {
		for _, c := range contribs {
			if changedSet[c] {
				dirty[page] = true
				break
			}
		}
	}
	for _, c := range changed {
		if _, isPage := out.PageFiles[c]; isPage {
			dirty[c] = true
		}
	}
	st := &genState{g: g, out: out, usedNames: map[string]bool{}}
	for name := range out.Pages {
		st.usedNames[name] = true
	}
	pages := make([]graph.OID, 0, len(dirty))
	for oid := range dirty {
		pages = append(pages, oid)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, oid := range pages {
		if !g.Site.HasNode(oid) {
			// The object vanished from the site graph: drop its page.
			delete(out.Pages, out.PageFiles[oid])
			delete(out.PageFiles, oid)
			delete(out.Contributors, oid)
			continue
		}
		st.queue = append(st.queue, oid)
	}
	for len(st.queue) > 0 {
		oid := st.queue[0]
		st.queue = st.queue[1:]
		if _, done := out.Pages[out.PageFiles[oid]]; done && !dirty[oid] {
			continue // an existing clean page referenced by a dirty one
		}
		if err := st.renderPage(oid); err != nil {
			return pagesRedone, err
		}
		pagesRedone++
	}
	return pagesRedone, nil
}

// renderPage renders one page, recording its contributor set.
func (st *genState) renderPage(oid graph.OID) error {
	// The page's own object is on the embed stack so that embedding
	// cycles back to the page degrade to links.
	st.embedStack = append(st.embedStack[:0], oid)
	st.contributors = map[graph.OID]bool{oid: true}
	htmlText, err := st.render(oid)
	if err != nil {
		return err
	}
	st.out.Pages[st.out.PageFiles[oid]] = htmlText
	contribs := make([]graph.OID, 0, len(st.contributors))
	for c := range st.contributors {
		contribs = append(contribs, c)
	}
	sort.Slice(contribs, func(i, j int) bool { return contribs[i] < contribs[j] })
	st.out.Contributors[oid] = contribs
	return nil
}

type genState struct {
	g          *Generator
	out        *Output
	queue      []graph.OID
	usedNames  map[string]bool
	embedStack []graph.OID
	// contributors collects, while one page renders, every object whose
	// content flowed into it.
	contributors map[graph.OID]bool
}

// fileFor assigns (or returns) the page file name of an object.
func (st *genState) fileFor(oid graph.OID, preferred string) string {
	if name, ok := st.out.PageFiles[oid]; ok {
		return name
	}
	name := preferred
	if name == "" {
		name = sanitizeFile(string(oid)) + ".html"
	}
	for n := 2; st.usedNames[name]; n++ {
		name = fmt.Sprintf("%s-%d.html", strings.TrimSuffix(name, ".html"), n)
	}
	st.usedNames[name] = true
	st.out.PageFiles[oid] = name
	return name
}

// schedule ensures the object will be rendered as a page.
func (st *genState) schedule(oid graph.OID) string {
	name, known := st.out.PageFiles[oid]
	if !known {
		name = st.fileFor(oid, "")
	}
	if _, done := st.out.Pages[name]; !done && !st.queued(oid) {
		st.queue = append(st.queue, oid)
	}
	return name
}

func (st *genState) queued(oid graph.OID) bool {
	for _, q := range st.queue {
		if q == oid {
			return true
		}
	}
	return false
}

// render renders one object through its selected template.
func (st *genState) render(oid graph.OID) (string, error) {
	t := st.selectTemplate(oid)
	if t == nil {
		return st.defaultRender(oid)
	}
	return template.Render(t, oid, st.g.Site, st)
}

// selectTemplate applies the paper's three selection rules, then the
// default.
func (st *genState) selectTemplate(oid graph.OID) *template.Template {
	if name, ok := st.g.PerObject[oid]; ok {
		if t := st.g.Templates.Get(name); t != nil {
			return t
		}
	}
	var bestPrefix, bestName string
	for prefix, name := range st.g.PerPrefix {
		if strings.HasPrefix(string(oid), prefix) && len(prefix) > len(bestPrefix) {
			bestPrefix, bestName = prefix, name
		}
	}
	if bestName != "" {
		if t := st.g.Templates.Get(bestName); t != nil {
			return t
		}
	}
	if v := st.g.Site.First(oid, st.g.TemplateAttr); v.Kind() == graph.KindString {
		if t := st.g.Templates.Get(v.Str()); t != nil {
			return t
		}
	}
	for _, coll := range st.g.Site.CollectionsOf(oid) {
		if name, ok := st.g.PerCollection[coll]; ok {
			if t := st.g.Templates.Get(name); t != nil {
				return t
			}
		}
	}
	if st.g.Default != "" {
		if t := st.g.Templates.Get(st.g.Default); t != nil {
			return t
		}
	}
	return nil
}

// defaultRender is the built-in attribute listing used when no template
// matches.
func (st *genState) defaultRender(oid graph.OID) (string, error) {
	var b strings.Builder
	title := html.EscapeString(string(oid))
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n<h1>%s</h1>\n<dl>\n", title, title)
	for _, e := range st.g.Site.Out(oid) {
		var rendered string
		var err error
		if e.To.IsNode() {
			rendered, err = st.RenderRef(e.To.OID(), string(e.To.OID()))
		} else {
			rendered = html.EscapeString(e.To.Text())
		}
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "<dt>%s</dt><dd>%s</dd>\n", html.EscapeString(e.Label), rendered)
	}
	b.WriteString("</dl>\n</body></html>\n")
	return b.String(), nil
}

// LookupTemplate resolves SINCLUDE names against the generator's set.
func (st *genState) LookupTemplate(name string) *template.Template {
	return st.g.Templates.Get(name)
}

// RenderRef links to the object's page, scheduling it for rendering. The
// target contributes to the current page (its attributes supplied the
// anchor text, and its file name is baked into the link).
func (st *genState) RenderRef(oid graph.OID, anchorText string) (string, error) {
	name := st.schedule(oid)
	if st.contributors != nil {
		st.contributors[oid] = true
	}
	return fmt.Sprintf(`<a href="%s">%s</a>`, name, html.EscapeString(anchorText)), nil
}

// RenderEmbed renders the object's template inline. Embedding cycles fall
// back to a reference so generation always terminates.
func (st *genState) RenderEmbed(oid graph.OID) (string, error) {
	for _, on := range st.embedStack {
		if on == oid {
			return st.RenderRef(oid, string(oid))
		}
	}
	st.embedStack = append(st.embedStack, oid)
	defer func() { st.embedStack = st.embedStack[:len(st.embedStack)-1] }()
	if st.contributors != nil {
		st.contributors[oid] = true
	}
	return st.render(oid)
}

// RenderFile resolves file atoms. Embedded text files are escaped;
// embedded HTML files pass through raw; images become img tags; anything
// else links to the file path.
func (st *genState) RenderFile(v graph.Value, embed bool) (string, error) {
	path := v.Str()
	if embed {
		switch v.FileType() {
		case graph.FileText, graph.FileHTML:
			data, err := st.g.ReadFile(path)
			if err != nil {
				return fmt.Sprintf("<!-- missing file %s -->", html.EscapeString(path)), nil
			}
			if v.FileType() == graph.FileHTML {
				return string(data), nil
			}
			return html.EscapeString(string(data)), nil
		}
	}
	esc := html.EscapeString(path)
	if v.FileType() == graph.FileImage {
		return fmt.Sprintf(`<img src="%s">`, esc), nil
	}
	return fmt.Sprintf(`<a href="%s">%s</a>`, esc, esc), nil
}

func sanitizeFile(s string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
	const maxName = 100
	if len(mapped) > maxName {
		mapped = mapped[:maxName]
	}
	return mapped
}

// SortedPageNames returns the generated page names, sorted, for stable
// reporting.
func (o *Output) SortedPageNames() []string {
	names := make([]string, 0, len(o.Pages))
	for n := range o.Pages {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
