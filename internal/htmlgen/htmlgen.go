// Package htmlgen is Strudel's HTML generator (§2.4): it takes a site
// graph and a set of HTML templates and produces the browsable web site.
//
// For every internal object the generator selects a template: (1) an
// object-specific template, (2) the value of the object's HTML-template
// attribute, or (3) the template associated with a collection the object
// belongs to; a built-in attribute-listing template is the last resort.
// Whether an object is realized as its own page or embedded into pages
// that refer to it is decided here, at generation time, by how templates
// reference it: plain references become links (and schedule the target as
// a page); EMBED references inline the object's rendering.
//
// Generation is parallel and deterministic. Pages are produced in BFS
// waves: every page of the current frontier renders concurrently against
// the read-only site graph, emitting placeholder tokens where link targets
// belong; a serial merge pass then walks the wave in order, assigns file
// names exactly as the sequential queue would, substitutes the
// placeholders, and schedules the next frontier. Output is byte-identical
// at every Parallelism setting.
package htmlgen

import (
	"fmt"
	"html"
	"os"
	"path"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"strudel/internal/fsx"
	"strudel/internal/graph"
	"strudel/internal/obs"
	"strudel/internal/template"
)

// Generator renders a site graph to HTML pages.
type Generator struct {
	Site      *graph.Graph
	Templates *template.Set
	// PerObject maps an oid to a template name (selection rule 1).
	PerObject map[graph.OID]string
	// PerPrefix maps an oid prefix (typically a Skolem function, e.g.
	// "YearPage(") to a template name; the longest matching prefix wins.
	// Checked after PerObject and before the HTML-template attribute.
	PerPrefix map[string]string
	// TemplateAttr is the attribute consulted by selection rule 2;
	// defaults to "HTML-template".
	TemplateAttr string
	// PerCollection maps a collection name to a template name (rule 3).
	PerCollection map[string]string
	// Default names a template used when no rule matches; when empty, a
	// built-in attribute listing is used.
	Default string
	// ReadFile resolves file atoms for EMBED; defaults to os.ReadFile.
	ReadFile func(path string) ([]byte, error)
	// Parallelism is the worker count for wave rendering: 0 uses one
	// worker per available CPU, 1 forces sequential generation. Output
	// bytes and file names are identical at every setting.
	Parallelism int
	// Obs, when non-nil, receives page counts and per-wave render
	// timings. Nil (the default) disables instrumentation.
	Obs *obs.GenMetrics
}

// New returns a generator over the site graph and templates.
func New(site *graph.Graph, ts *template.Set) *Generator {
	return &Generator{
		Site:          site,
		Templates:     ts,
		PerObject:     map[graph.OID]string{},
		PerPrefix:     map[string]string{},
		PerCollection: map[string]string{},
		TemplateAttr:  "HTML-template",
		ReadFile:      os.ReadFile,
	}
}

func (g *Generator) parallelism() int {
	if g.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if g.Parallelism < 1 {
		return 1
	}
	return g.Parallelism
}

// Output is a generated site: page file names and their HTML.
type Output struct {
	// Pages maps file name → HTML text.
	Pages map[string]string
	// PageFiles maps realized object → its file name.
	PageFiles map[graph.OID]string
	// Contributors maps each page's object to every object whose content
	// flowed into that page (itself, embedded objects, and objects whose
	// attributes supplied anchor text). Incremental regeneration uses it
	// to find the pages a site-graph change dirties.
	Contributors map[graph.OID][]graph.OID
	// Refs maps each page's object to the objects its rendered links
	// point at, and Roots records the generation roots; together they let
	// incremental regeneration drop pages that are no longer reachable.
	Refs  map[graph.OID][]graph.OID
	Roots []graph.OID
}

// PageNameError reports a page name that cannot be written safely under
// the output directory.
type PageNameError struct {
	Name   string
	Reason string
}

func (e *PageNameError) Error() string {
	return fmt.Sprintf("htmlgen: bad page name %q: %s", e.Name, e.Reason)
}

// checkPageName rejects names that would land outside the output
// directory. Slash-separated names are allowed and create subdirectories.
func checkPageName(name string) error {
	switch {
	case name == "":
		return &PageNameError{Name: name, Reason: "empty"}
	case strings.ContainsRune(name, '\x00'):
		return &PageNameError{Name: name, Reason: "contains NUL"}
	case filepath.IsAbs(name) || strings.HasPrefix(name, "/"):
		return &PageNameError{Name: name, Reason: "absolute path"}
	}
	clean := path.Clean(strings.ReplaceAll(name, "\\", "/"))
	if clean == "." || clean == ".." || strings.HasPrefix(clean, "../") {
		return &PageNameError{Name: name, Reason: "escapes the output directory"}
	}
	return nil
}

// WriteDir writes every page into dir, creating it as needed. Pages are
// partitioned in sorted-name order across a worker pool; when several
// writes fail, the error reported is the one for the first page in sorted
// order, so partial-write failures are deterministic. Page names are
// validated first: a name that is empty, absolute, or escapes dir via
// ".." fails the whole write with a *PageNameError before anything is
// written; names containing "/" get their subdirectories created.
func (o *Output) WriteDir(dir string) error { return o.writeDir(fsx.OS, dir) }

// WriteDirFS is WriteDir over an injectable filesystem.
func (o *Output) WriteDirFS(fsys fsx.FS, dir string) error { return o.writeDir(fsys, dir) }

func (o *Output) writeDir(fsys fsx.FS, dir string) error {
	names := o.SortedPageNames()
	// Validate every name and collect subdirectories before touching the
	// filesystem, so a bad name cannot leave a half-written directory.
	subdirs := map[string]bool{}
	for _, name := range names {
		if err := checkPageName(name); err != nil {
			return err
		}
		if d := filepath.Dir(filepath.FromSlash(name)); d != "." {
			subdirs[d] = true
		}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("htmlgen: %w", err)
	}
	dirs := make([]string, 0, len(subdirs))
	for d := range subdirs {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		if err := fsys.MkdirAll(filepath.Join(dir, d), 0o755); err != nil {
			return fmt.Errorf("htmlgen: %w", err)
		}
	}
	write := func(name string) error {
		if err := fsys.WriteFile(filepath.Join(dir, filepath.FromSlash(name)), []byte(o.Pages[name]), 0o644); err != nil {
			return fmt.Errorf("htmlgen: write %s: %w", name, err)
		}
		return nil
	}
	par := runtime.GOMAXPROCS(0)
	if par > len(names) {
		par = len(names)
	}
	if par <= 1 {
		for _, name := range names {
			if err := write(name); err != nil {
				return err
			}
		}
		return nil
	}
	// Contiguous chunks of the sorted names; each worker stops at its
	// first failure and the merge keeps the failure with the smallest
	// global index.
	errIdx := make([]int, par)
	errs := make([]error, par)
	var wg sync.WaitGroup
	chunk := (len(names) + par - 1) / par
	for w := 0; w < par; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(names) {
			hi = len(names)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if err := write(names[i]); err != nil {
					errIdx[w], errs[w] = i, err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	best := -1
	for w := range errs {
		if errs[w] != nil && (best == -1 || errIdx[w] < errIdx[best]) {
			best = w
		}
	}
	if best >= 0 {
		return errs[best]
	}
	return nil
}

// Publish atomically replaces dir with the generated site. The pages are
// staged into a sibling temp directory (durable writes), verify — when
// non-nil — inspects the staged tree (integrity constraints, link checks)
// and can veto publication, and only then is the staged tree swapped into
// place with two renames: the previous generation moves to dir+".prev"
// (kept for rollback) and the stage takes its name. A failure at any
// step, including mid-swap, leaves dir either untouched or fully new —
// readers never observe a half-written site. The parent directory is
// synced after the swap so the publication survives a crash.
func (o *Output) Publish(fsys fsx.FS, dir string, verify func(stage string) error) error {
	stage := fmt.Sprintf("%s.tmp-%d", dir, os.Getpid())
	prev := dir + ".prev"
	_ = fsys.RemoveAll(stage)
	if err := o.writeDir(fsys, stage); err != nil {
		_ = fsys.RemoveAll(stage)
		return err
	}
	if verify != nil {
		if err := verify(stage); err != nil {
			_ = fsys.RemoveAll(stage)
			return fmt.Errorf("htmlgen: publish: verify: %w", err)
		}
	}
	return swapIn(fsys, stage, dir, prev)
}

// swapIn replaces dir with the fully staged tree: the previous
// generation moves to prev (kept for rollback) and the stage takes its
// name, with the parent directory synced so the swap survives a crash.
// A failure at any step leaves dir either untouched or fully new, and
// consumes the stage either way.
func swapIn(fsys fsx.FS, stage, dir, prev string) error {
	if err := fsys.RemoveAll(prev); err != nil {
		_ = fsys.RemoveAll(stage)
		return fmt.Errorf("htmlgen: publish: %w", err)
	}
	hadOld := false
	if _, err := fsys.Stat(dir); err == nil {
		hadOld = true
		if err := fsys.Rename(dir, prev); err != nil {
			_ = fsys.RemoveAll(stage)
			return fmt.Errorf("htmlgen: publish: %w", err)
		}
	}
	if err := fsys.Rename(stage, dir); err != nil {
		if hadOld {
			// Put the previous generation back so dir never vanishes.
			_ = fsys.Rename(prev, dir)
		}
		_ = fsys.RemoveAll(stage)
		return fmt.Errorf("htmlgen: publish: %w", err)
	}
	if err := fsys.SyncDir(filepath.Dir(dir)); err != nil {
		return fmt.Errorf("htmlgen: publish: %w", err)
	}
	return nil
}

// PublishPatch atomically replaces dir with the generated site like
// Publish, but stages unchanged pages as hard links to the currently
// published files instead of rewriting their bytes. Only the pages named
// in dirty — plus any whose published copy is missing or the wrong size,
// or whose link attempt fails — are durably written from memory, so a
// localized edit republishes a thousand-page site with a handful of
// writes. The swap itself is the same two-rename sequence: readers see
// the old tree or the complete new one, never a mix. When dir does not
// exist yet this is a full Publish. Returns how many staged pages were
// hardlinked vs written.
func (o *Output) PublishPatch(fsys fsx.FS, dir string, dirty []string, verify func(stage string) error) (linked, written int, err error) {
	if _, serr := fsys.Stat(dir); serr != nil {
		return 0, len(o.Pages), o.Publish(fsys, dir, verify)
	}
	dirtySet := make(map[string]bool, len(dirty))
	for _, name := range dirty {
		dirtySet[name] = true
	}
	stage := fmt.Sprintf("%s.tmp-%d", dir, os.Getpid())
	prev := dir + ".prev"
	_ = fsys.RemoveAll(stage)
	names := o.SortedPageNames()
	// Validate every name and collect subdirectories before touching the
	// filesystem, mirroring writeDir's all-or-nothing staging.
	subdirs := map[string]bool{}
	for _, name := range names {
		if err := checkPageName(name); err != nil {
			return 0, 0, err
		}
		if d := filepath.Dir(filepath.FromSlash(name)); d != "." {
			subdirs[d] = true
		}
	}
	fail := func(err error) (int, int, error) {
		_ = fsys.RemoveAll(stage)
		return linked, written, fmt.Errorf("htmlgen: publish patch: %w", err)
	}
	if err := fsys.MkdirAll(stage, 0o755); err != nil {
		return fail(err)
	}
	dirs := make([]string, 0, len(subdirs))
	for d := range subdirs {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		if err := fsys.MkdirAll(filepath.Join(stage, d), 0o755); err != nil {
			return fail(err)
		}
	}
	for _, name := range names {
		rel := filepath.FromSlash(name)
		dst := filepath.Join(stage, rel)
		body := []byte(o.Pages[name])
		if !dirtySet[name] {
			src := filepath.Join(dir, rel)
			if fi, serr := fsys.Stat(src); serr == nil && fi.Size() == int64(len(body)) {
				if fsys.Link(src, dst) == nil {
					linked++
					continue
				}
				// Link failure is advisory (cross-device, permissions,
				// injected fault): fall through to a durable write.
			}
		}
		if err := fsys.WriteFile(dst, body, 0o644); err != nil {
			return fail(fmt.Errorf("write %s: %w", name, err))
		}
		written++
	}
	if verify != nil {
		if err := verify(stage); err != nil {
			_ = fsys.RemoveAll(stage)
			return linked, written, fmt.Errorf("htmlgen: publish patch: verify: %w", err)
		}
	}
	if err := swapIn(fsys, stage, dir, prev); err != nil {
		return linked, written, err
	}
	return linked, written, nil
}

// PageCount returns the number of generated pages.
func (o *Output) PageCount() int { return len(o.Pages) }

// Generate renders the site starting from the root objects. The first
// root becomes index.html. Every object referenced without EMBED from a
// rendered page becomes a page of its own.
func (g *Generator) Generate(roots []graph.OID) (*Output, error) {
	out := &Output{
		Pages:        map[string]string{},
		PageFiles:    map[graph.OID]string{},
		Contributors: map[graph.OID][]graph.OID{},
		Refs:         map[graph.OID][]graph.OID{},
		Roots:        append([]graph.OID(nil), roots...),
	}
	st := &genState{g: g, out: out, usedNames: map[string]bool{}, pending: map[graph.OID]bool{}}
	for i, r := range roots {
		if !g.Site.HasNode(r) {
			return nil, fmt.Errorf("htmlgen: root %s is not in the site graph", r)
		}
		if i == 0 {
			st.fileFor(r, "index.html")
		}
		st.schedule(r)
	}
	if err := st.run(); err != nil {
		return nil, err
	}
	return out, nil
}

// Regenerate re-renders only the pages dirtied by the given changed
// site-graph objects (the pages of those objects plus every page they
// contributed content to), replacing them in the output in place. New
// objects referenced by re-rendered pages are generated as usual.
// Regeneration is sequential: dirty sets are small by construction.
// It returns the file names of the re-rendered pages — the set a patch
// publication must write rather than hardlink; pages dropped because
// their object vanished are not listed (they simply no longer exist in
// Pages, so staging skips them).
func (g *Generator) Regenerate(out *Output, changed []graph.OID) (redone []string, err error) {
	changedSet := map[graph.OID]bool{}
	for _, c := range changed {
		changedSet[c] = true
	}
	dirty := map[graph.OID]bool{}
	for page, contribs := range out.Contributors {
		for _, c := range contribs {
			if changedSet[c] {
				dirty[page] = true
				break
			}
		}
	}
	for _, c := range changed {
		if _, isPage := out.PageFiles[c]; isPage {
			dirty[c] = true
		}
	}
	st := &genState{g: g, out: out, usedNames: map[string]bool{}, pending: map[graph.OID]bool{}}
	for name := range out.Pages {
		st.usedNames[name] = true
	}
	pages := make([]graph.OID, 0, len(dirty))
	for oid := range dirty {
		pages = append(pages, oid)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, oid := range pages {
		if !g.Site.HasNode(oid) {
			// The object vanished from the site graph: drop its page.
			dropPage(out, oid)
			continue
		}
		st.queue = append(st.queue, oid)
		st.pending[oid] = true
	}
	for len(st.queue) > 0 {
		oid := st.queue[0]
		st.queue = st.queue[1:]
		if _, done := out.Pages[out.PageFiles[oid]]; done && !dirty[oid] {
			continue // an existing clean page referenced by a dirty one
		}
		r := renderOne(g, oid)
		if r.err != nil {
			return redone, r.err
		}
		st.finish(oid, r)
		redone = append(redone, out.PageFiles[oid])
	}
	dropOrphans(out)
	return redone, nil
}

// dropPage removes one object's page from the output.
func dropPage(out *Output, oid graph.OID) {
	delete(out.Pages, out.PageFiles[oid])
	delete(out.PageFiles, oid)
	delete(out.Contributors, oid)
	delete(out.Refs, oid)
}

// dropOrphans removes pages no longer reachable from the roots through
// rendered references. A full build renders exactly the reference
// closure of the roots, so an object that keeps its site-graph node but
// loses its last rendered link must lose its page too, or the patched
// tree diverges from a from-scratch build.
func dropOrphans(out *Output) {
	if out.Refs == nil || len(out.Roots) == 0 {
		return
	}
	reach := map[graph.OID]bool{}
	stack := append([]graph.OID(nil), out.Roots...)
	for len(stack) > 0 {
		oid := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[oid] {
			continue
		}
		reach[oid] = true
		stack = append(stack, out.Refs[oid]...)
	}
	for oid := range out.PageFiles {
		if !reach[oid] {
			dropPage(out, oid)
		}
	}
}

// genState is the serial side of generation: file-name assignment, the
// page queue, and the output maps. It is only ever touched by the
// coordinating goroutine; rendering happens in renderJobs.
type genState struct {
	g         *Generator
	out       *Output
	queue     []graph.OID
	usedNames map[string]bool
	// pending marks objects that have been scheduled, replacing the old
	// linear queue scan with an O(1) check that also covers pages of the
	// wave currently being rendered.
	pending map[graph.OID]bool
}

// run drains the queue in BFS waves: the whole frontier renders
// concurrently, then the merge pass finishes pages in frontier order,
// which reproduces the sequential queue's file-name assignment exactly.
func (st *genState) run() error {
	par := st.g.parallelism()
	for len(st.queue) > 0 {
		wave := st.queue
		st.queue = nil
		waveStart := time.Now()
		results := renderWave(st.g, wave, par)
		st.g.Obs.RecordWave(len(wave), int64(time.Since(waveStart)))
		for i, oid := range wave {
			if results[i].err != nil {
				// The first failing page in wave order wins, independent
				// of goroutine scheduling.
				return results[i].err
			}
			st.finish(oid, results[i])
		}
	}
	return nil
}

type renderResult struct {
	html string
	job  *renderJob
	err  error
}

// renderWave renders every page of the frontier on a bounded worker pool.
func renderWave(g *Generator, wave []graph.OID, par int) []renderResult {
	results := make([]renderResult, len(wave))
	if par <= 1 || len(wave) < 2 {
		for i, oid := range wave {
			results[i] = renderOne(g, oid)
		}
		return results
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, oid := range wave {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, oid graph.OID) {
			defer wg.Done()
			results[i] = renderOne(g, oid)
			<-sem
		}(i, oid)
	}
	wg.Wait()
	return results
}

// renderOne renders a single page into placeholder form.
func renderOne(g *Generator, oid graph.OID) renderResult {
	// The page's own object is on the embed stack so that embedding
	// cycles back to the page degrade to links.
	job := &renderJob{
		g:            g,
		embedStack:   []graph.OID{oid},
		contributors: map[graph.OID]bool{oid: true},
	}
	htmlText, err := job.render(oid)
	return renderResult{html: htmlText, job: job, err: err}
}

// finish completes one rendered page: it assigns file names to the page's
// references in render order (the order the sequential generator would
// have used), substitutes them for the placeholders, and records the page.
func (st *genState) finish(oid graph.OID, r renderResult) {
	names := make([]string, len(r.job.refs))
	for i, ref := range r.job.refs {
		names[i] = st.schedule(ref)
	}
	st.out.Pages[st.out.PageFiles[oid]] = substituteRefs(r.html, names)
	if st.out.Refs != nil {
		st.out.Refs[oid] = append([]graph.OID(nil), r.job.refs...)
	}
	contribs := make([]graph.OID, 0, len(r.job.contributors))
	for c := range r.job.contributors {
		contribs = append(contribs, c)
	}
	sort.Slice(contribs, func(i, j int) bool { return contribs[i] < contribs[j] })
	st.out.Contributors[oid] = contribs
}

// fileFor assigns (or returns) the page file name of an object.
func (st *genState) fileFor(oid graph.OID, preferred string) string {
	if name, ok := st.out.PageFiles[oid]; ok {
		return name
	}
	name := preferred
	if name == "" {
		name = sanitizeFile(string(oid)) + ".html"
	}
	for n := 2; st.usedNames[name]; n++ {
		name = fmt.Sprintf("%s-%d.html", strings.TrimSuffix(name, ".html"), n)
	}
	st.usedNames[name] = true
	st.out.PageFiles[oid] = name
	return name
}

// schedule ensures the object will be rendered as a page.
func (st *genState) schedule(oid graph.OID) string {
	name, known := st.out.PageFiles[oid]
	if !known {
		name = st.fileFor(oid, "")
	}
	if _, done := st.out.Pages[name]; !done && !st.pending[oid] {
		st.pending[oid] = true
		st.queue = append(st.queue, oid)
	}
	return name
}

// renderJob is the per-page worker state: it renders one object's template
// tree with placeholder tokens standing in for link targets, and records,
// in render order, which objects those placeholders refer to.
type renderJob struct {
	g          *Generator
	embedStack []graph.OID
	// refs lists the target of every RenderRef call in render order;
	// placeholder i resolves to refs[i]'s file name at merge time.
	refs []graph.OID
	// contributors collects, while the page renders, every object whose
	// content flowed into it.
	contributors map[graph.OID]bool
}

const refMark = '\x00'

// refPlaceholder is the token substituted at merge time; NUL delimiters
// cannot appear in escaped HTML text.
func refPlaceholder(i int) string {
	return string(refMark) + strconv.Itoa(i) + string(refMark)
}

// substituteRefs replaces every placeholder token with its resolved file
// name.
func substituteRefs(s string, names []string) string {
	if !strings.ContainsRune(s, refMark) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for {
		start := strings.IndexByte(s, refMark)
		if start < 0 {
			b.WriteString(s)
			return b.String()
		}
		end := strings.IndexByte(s[start+1:], refMark)
		if end < 0 {
			b.WriteString(s)
			return b.String()
		}
		idx, err := strconv.Atoi(s[start+1 : start+1+end])
		b.WriteString(s[:start])
		if err == nil && idx >= 0 && idx < len(names) {
			b.WriteString(names[idx])
		}
		s = s[start+1+end+1:]
	}
}

// render renders one object through its selected template.
func (job *renderJob) render(oid graph.OID) (string, error) {
	t := job.g.selectTemplate(oid)
	if t == nil {
		return job.defaultRender(oid)
	}
	return template.Render(t, oid, job.g.Site, job)
}

// selectTemplate applies the paper's three selection rules, then the
// default.
func (g *Generator) selectTemplate(oid graph.OID) *template.Template {
	if name, ok := g.PerObject[oid]; ok {
		if t := g.Templates.Get(name); t != nil {
			return t
		}
	}
	var bestPrefix, bestName string
	for prefix, name := range g.PerPrefix {
		if strings.HasPrefix(string(oid), prefix) && len(prefix) > len(bestPrefix) {
			bestPrefix, bestName = prefix, name
		}
	}
	if bestName != "" {
		if t := g.Templates.Get(bestName); t != nil {
			return t
		}
	}
	if v := g.Site.First(oid, g.TemplateAttr); v.Kind() == graph.KindString {
		if t := g.Templates.Get(v.Str()); t != nil {
			return t
		}
	}
	for _, coll := range g.Site.CollectionsOf(oid) {
		if name, ok := g.PerCollection[coll]; ok {
			if t := g.Templates.Get(name); t != nil {
				return t
			}
		}
	}
	if g.Default != "" {
		if t := g.Templates.Get(g.Default); t != nil {
			return t
		}
	}
	return nil
}

// defaultRender is the built-in attribute listing used when no template
// matches.
func (job *renderJob) defaultRender(oid graph.OID) (string, error) {
	var b strings.Builder
	title := html.EscapeString(string(oid))
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n<h1>%s</h1>\n<dl>\n", title, title)
	for _, e := range job.g.Site.Out(oid) {
		var rendered string
		var err error
		if e.To.IsNode() {
			rendered, err = job.RenderRef(e.To.OID(), string(e.To.OID()))
		} else {
			rendered = html.EscapeString(e.To.Text())
		}
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "<dt>%s</dt><dd>%s</dd>\n", html.EscapeString(e.Label), rendered)
	}
	b.WriteString("</dl>\n</body></html>\n")
	return b.String(), nil
}

// LookupTemplate resolves SINCLUDE names against the generator's set.
func (job *renderJob) LookupTemplate(name string) *template.Template {
	return job.g.Templates.Get(name)
}

// RenderRef links to the object's page, recording it for scheduling at
// merge time. The target contributes to the current page (its attributes
// supplied the anchor text, and its file name is baked into the link).
func (job *renderJob) RenderRef(oid graph.OID, anchorText string) (string, error) {
	job.refs = append(job.refs, oid)
	job.contributors[oid] = true
	return fmt.Sprintf(`<a href="%s">%s</a>`, refPlaceholder(len(job.refs)-1),
		html.EscapeString(anchorText)), nil
}

// RenderEmbed renders the object's template inline. Embedding cycles fall
// back to a reference so generation always terminates.
func (job *renderJob) RenderEmbed(oid graph.OID) (string, error) {
	for _, on := range job.embedStack {
		if on == oid {
			return job.RenderRef(oid, string(oid))
		}
	}
	job.embedStack = append(job.embedStack, oid)
	defer func() { job.embedStack = job.embedStack[:len(job.embedStack)-1] }()
	job.contributors[oid] = true
	return job.render(oid)
}

// RenderFile resolves file atoms. Embedded text files are escaped;
// embedded HTML files pass through raw; images become img tags; anything
// else links to the file path.
func (job *renderJob) RenderFile(v graph.Value, embed bool) (string, error) {
	path := v.Str()
	if embed {
		switch v.FileType() {
		case graph.FileText, graph.FileHTML:
			data, err := job.g.ReadFile(path)
			if err != nil {
				return fmt.Sprintf("<!-- missing file %s -->", html.EscapeString(path)), nil
			}
			if v.FileType() == graph.FileHTML {
				return string(data), nil
			}
			return html.EscapeString(string(data)), nil
		}
	}
	esc := html.EscapeString(path)
	if v.FileType() == graph.FileImage {
		return fmt.Sprintf(`<img src="%s">`, esc), nil
	}
	return fmt.Sprintf(`<a href="%s">%s</a>`, esc, esc), nil
}

func sanitizeFile(s string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
	const maxName = 100
	if len(mapped) > maxName {
		mapped = mapped[:maxName]
	}
	return mapped
}

// SortedPageNames returns the generated page names, sorted, for stable
// reporting.
func (o *Output) SortedPageNames() []string {
	names := make([]string, 0, len(o.Pages))
	for n := range o.Pages {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
