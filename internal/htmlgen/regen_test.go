package htmlgen

import (
	"strings"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/template"
)

// regenSite builds the fixture site graph: a root listing two item
// pages, one of which embeds a shared box. Overrides replace attribute
// values, standing in for a re-evaluated site graph.
func regenSite(overrides map[string]string) *graph.Graph {
	val := func(key, dflt string) string {
		if v, ok := overrides[key]; ok {
			return v
		}
		return dflt
	}
	site := graph.New()
	site.AddEdge("root", "title", graph.NewString("Home"))
	site.AddEdge("root", "item", graph.NewNode("a"))
	site.AddEdge("root", "item", graph.NewNode("b"))
	site.AddEdge("a", "title", graph.NewString(val("a.title", "Item A")))
	site.AddEdge("b", "title", graph.NewString(val("b.title", "Item B")))
	site.AddEdge("a", "box", graph.NewNode("shared"))
	site.AddEdge("shared", "note", graph.NewString(val("shared.note", "v1")))
	return site
}

// regenFixture wires templates around the fixture site.
func regenFixture(t *testing.T) (*Generator, *graph.Graph) {
	t.Helper()
	site := regenSite(nil)
	ts := template.NewSet()
	ts.MustAdd("root", `<h1><SFMT title></h1><SFMT item UL TEXT=title>`)
	ts.MustAdd("item", `<h2><SFMT title></h2><SIF box><SFMT box EMBED></SIF>`)
	ts.MustAdd("box", `[note: <SFMT note>]`)
	g := New(site, ts)
	g.PerObject["root"] = "root"
	g.PerObject["a"] = "item"
	g.PerObject["b"] = "item"
	g.PerObject["shared"] = "box"
	return g, site
}

func TestContributorsRecorded(t *testing.T) {
	g, _ := regenFixture(t)
	out, err := g.Generate([]graph.OID{"root"})
	if err != nil {
		t.Fatal(err)
	}
	// Page a embeds shared, so shared contributes to a.
	contribs := strings.Builder{}
	for _, c := range out.Contributors["a"] {
		contribs.WriteString(string(c) + ",")
	}
	if !strings.Contains(contribs.String(), "shared") {
		t.Errorf("a's contributors = %s", contribs.String())
	}
	// Root's anchors read item titles: a and b contribute to root.
	var rootHasA bool
	for _, c := range out.Contributors["root"] {
		if c == "a" {
			rootHasA = true
		}
	}
	if !rootHasA {
		t.Errorf("root's contributors = %v", out.Contributors["root"])
	}
}

func TestRegenerateOnlyDirtyPages(t *testing.T) {
	g, site := regenFixture(t)
	out, err := g.Generate([]graph.OID{"root"})
	if err != nil {
		t.Fatal(err)
	}
	before := map[string]string{}
	for n, p := range out.Pages {
		before[n] = p
	}
	// Change the shared box's note by swapping in a freshly evaluated
	// site graph (the pipeline rebuilds site graphs; it never mutates
	// them in place).
	_ = site
	g.Site = regenSite(map[string]string{"shared.note": "v2"})
	n, err := g.Regenerate(out, []graph.OID{"shared"})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty pages: shared's own page (it was realized? no — embedded only,
	// so no page) and a's page, which embeds it. Root and b are clean.
	if len(n) != 1 {
		t.Errorf("redone %v, want 1 page (only a)", n)
	}
	aPage := out.Pages[out.PageFiles["a"]]
	if !strings.Contains(aPage, "v2") {
		t.Errorf("a not re-rendered:\n%s", aPage)
	}
	if out.Pages["index.html"] != before["index.html"] {
		t.Error("root should be untouched")
	}
	if out.Pages[out.PageFiles["b"]] != before[out.PageFiles["b"]] {
		t.Error("b should be untouched")
	}
}

func TestRegenerateAnchorTextChange(t *testing.T) {
	g, site := regenFixture(t)
	out, err := g.Generate([]graph.OID{"root"})
	if err != nil {
		t.Fatal(err)
	}
	// b's title feeds root's anchor text: changing b dirties root and b.
	_ = site
	g.Site = regenSite(map[string]string{"b.title": "Item B renamed"})
	n, err := g.Regenerate(out, []graph.OID{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(n) != 2 {
		t.Errorf("redone %v, want 2 pages (root + b)", n)
	}
	if !strings.Contains(out.Pages["index.html"], "Item B renamed") {
		t.Error("root anchor not refreshed")
	}
}

func TestRegenerateVanishedObjectDropsPage(t *testing.T) {
	g, _ := regenFixture(t)
	out, err := g.Generate([]graph.OID{"root"})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a rebuilt site graph without b.
	site2 := graph.New()
	site2.AddEdge("root", "title", graph.NewString("Home"))
	site2.AddEdge("root", "item", graph.NewNode("a"))
	site2.AddEdge("a", "title", graph.NewString("Item A"))
	site2.AddEdge("a", "box", graph.NewNode("shared"))
	site2.AddEdge("shared", "note", graph.NewString("v1"))
	g.Site = site2
	bFile := out.PageFiles["b"]
	if _, err := g.Regenerate(out, []graph.OID{"b"}); err != nil {
		t.Fatal(err)
	}
	if _, still := out.Pages[bFile]; still {
		t.Error("vanished object's page should be dropped")
	}
	if !strings.Contains(out.Pages["index.html"], "Item A") {
		t.Error("root should re-render without b")
	}
	if strings.Contains(out.Pages["index.html"], "Item B") {
		t.Errorf("root still lists b:\n%s", out.Pages["index.html"])
	}
}

func TestRegenerateMatchesFullGeneration(t *testing.T) {
	// After any regeneration, the output must equal a from-scratch
	// generation over the same site graph.
	g, site := regenFixture(t)
	out, err := g.Generate([]graph.OID{"root"})
	if err != nil {
		t.Fatal(err)
	}
	_ = site
	g.Site = regenSite(map[string]string{"shared.note": "v3", "a.title": "Item A v3"})
	if _, err := g.Regenerate(out, []graph.OID{"shared", "a"}); err != nil {
		t.Fatal(err)
	}
	fresh, err := g.Generate([]graph.OID{"root"})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range fresh.Pages {
		if out.Pages[name] != want {
			t.Errorf("page %s differs after regeneration:\n--- incremental\n%s\n--- fresh\n%s",
				name, out.Pages[name], want)
		}
	}
}
