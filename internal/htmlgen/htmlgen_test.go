package htmlgen

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/struql"
	"strudel/internal/template"
)

const fig3Query = `
create RootPage(), AbstractsPage()
link RootPage() -> "Abstracts" -> AbstractsPage(),
     RootPage() -> "title" -> "My Home Page"

where Publications(x)
create AbstractPage(x), PaperPresentation(x)
link PaperPresentation(x) -> "Abstract" -> AbstractPage(x),
     AbstractsPage() -> "Abstract" -> AbstractPage(x)
{
  where x -> l -> v
  link AbstractPage(x) -> l -> v,
       PaperPresentation(x) -> l -> v
}
{
  where x -> "year" -> y
  create YearPage(y)
  link YearPage(y) -> "Year" -> y,
       YearPage(y) -> "Paper" -> PaperPresentation(x),
       RootPage() -> "YearPage" -> YearPage(y)
}
`

// fig6Templates reconstructs the Fig. 6 template set.
func fig6Templates(t *testing.T) *template.Set {
	t.Helper()
	ts := template.NewSet()
	ts.MustAdd("RootPage", `<HTML><HEAD><TITLE><SFMT title></TITLE></HEAD><BODY>
<H1><SFMT title></H1>
<P>All <SFMT Abstracts TEXT=none>.</P>
<H2>Papers by year</H2>
<SFMT YearPage UL ORDER=ascend KEY=Year>
</BODY></HTML>`)
	ts.MustAdd("AbstractsPage", `<HTML><BODY><H1>Abstracts</H1>
<SFMT Abstract EMBED UL>
</BODY></HTML>`)
	ts.MustAdd("AbstractPage", `<H3><SFMT title></H3><P>by <SFMT author ENUM DELIM=", "></P>`)
	ts.MustAdd("YearPage", `<HTML><BODY><H1>Papers from <SFMT Year></H1>
<SFMT Paper UL>
</BODY></HTML>`)
	ts.MustAdd("PaperPresentation", `<HTML><BODY><B><SFMT title></B> by <SFMT author ENUM DELIM=", ">
(<SFMT year>)<SIF journal> In <SFMT journal>.</SIF>
<P><SFMT Abstract></P></BODY></HTML>`)
	return ts
}

func fig2Data() *graph.Graph {
	g := graph.New()
	g.AddToCollection("Publications", "pub1")
	g.AddToCollection("Publications", "pub2")
	g.AddEdge("pub1", "title", graph.NewString("A Query Language"))
	g.AddEdge("pub1", "author", graph.NewString("Fernandez"))
	g.AddEdge("pub1", "author", graph.NewString("Florescu"))
	g.AddEdge("pub1", "year", graph.NewInt(1997))
	g.AddEdge("pub1", "journal", graph.NewString("SIGMOD Record"))
	g.AddEdge("pub2", "title", graph.NewString("Catching the Boat"))
	g.AddEdge("pub2", "author", graph.NewString("Fernandez"))
	g.AddEdge("pub2", "year", graph.NewInt(1998))
	return g
}

func buildSiteGraph(t *testing.T) *graph.Graph {
	t.Helper()
	r, err := struql.Eval(struql.MustParse(fig3Query), struql.NewGraphSource(fig2Data()), nil)
	if err != nil {
		t.Fatal(err)
	}
	return r.Graph
}

func generatorFor(t *testing.T) (*Generator, *graph.Graph) {
	t.Helper()
	site := buildSiteGraph(t)
	g := New(site, fig6Templates(t))
	g.PerObject["RootPage()"] = "RootPage"
	g.PerObject["AbstractsPage()"] = "AbstractsPage"
	for _, oid := range site.Nodes() {
		s := string(oid)
		switch {
		case strings.HasPrefix(s, "AbstractPage("):
			g.PerObject[oid] = "AbstractPage"
		case strings.HasPrefix(s, "PaperPresentation("):
			g.PerObject[oid] = "PaperPresentation"
		case strings.HasPrefix(s, "YearPage("):
			g.PerObject[oid] = "YearPage"
		}
	}
	return g, site
}

func TestGenerateFig6Site(t *testing.T) {
	g, _ := generatorFixture(t)
	out, err := g.Generate([]graph.OID{"RootPage()"})
	if err != nil {
		t.Fatal(err)
	}
	// Root page is index.html.
	root, ok := out.Pages["index.html"]
	if !ok {
		t.Fatalf("index.html missing; pages: %v", out.SortedPageNames())
	}
	if !strings.Contains(root, "<H1>My Home Page</H1>") {
		t.Errorf("root page content:\n%s", root)
	}
	// Year pages sorted ascending: 1997 before 1998.
	if !(strings.Index(root, "YearPage_1997_") < strings.Index(root, "YearPage_1998_")) {
		t.Errorf("year order wrong:\n%s", root)
	}
	// Year page realized as its own page, linking paper presentations.
	ypName := out.PageFiles["YearPage(1997)"]
	yp := out.Pages[ypName]
	if !strings.Contains(yp, "Papers from 1997") {
		t.Errorf("year page:\n%s", yp)
	}
	if !strings.Contains(yp, `<a href="`+out.PageFiles["PaperPresentation(pub1)"]+`"`) {
		t.Errorf("year page should link pub1 presentation:\n%s", yp)
	}
	// Paper presentation: authors enumerated, journal conditional.
	pp1 := out.Pages[out.PageFiles["PaperPresentation(pub1)"]]
	if !strings.Contains(pp1, "Fernandez, Florescu") || !strings.Contains(pp1, "In SIGMOD Record.") {
		t.Errorf("pp1:\n%s", pp1)
	}
	pp2 := out.Pages[out.PageFiles["PaperPresentation(pub2)"]]
	if strings.Contains(pp2, "In ") && strings.Contains(pp2, "SIGMOD Record") {
		t.Errorf("pp2 should have no journal:\n%s", pp2)
	}
}

// generatorFixture is a renamed helper to avoid the typo'd name above.
func generatorFixture(t *testing.T) (*Generator, *graph.Graph) { return generatorFor(t) }

func TestEmbedVsPageRealization(t *testing.T) {
	// §2.4: when referenced from PaperPresentation, an AbstractPage is a
	// separate page; when referenced from AbstractsPage with EMBED, the
	// same object is embedded. Both happen in one site.
	g, _ := generatorFixture(t)
	out, err := g.Generate([]graph.OID{"RootPage()"})
	if err != nil {
		t.Fatal(err)
	}
	absName := out.PageFiles["AbstractsPage()"]
	abs := out.Pages[absName]
	// Embedded abstract content appears inline in the abstracts page.
	if !strings.Contains(abs, "<H3>A Query Language</H3>") {
		t.Errorf("abstracts page should embed abstract content:\n%s", abs)
	}
	// And the AbstractPage objects are ALSO realized as pages, because
	// PaperPresentation references them without EMBED.
	apName, ok := out.PageFiles["AbstractPage(pub1)"]
	if !ok {
		t.Fatal("AbstractPage(pub1) should be realized as a page")
	}
	if !strings.Contains(out.Pages[apName], "<H3>A Query Language</H3>") {
		t.Errorf("abstract page content:\n%s", out.Pages[apName])
	}
}

func TestTemplateSelectionRules(t *testing.T) {
	site := graph.New()
	site.AddToCollection("People", "p1")
	site.AddToCollection("People", "p2")
	site.AddNode("p3")
	site.AddNode("p4")
	site.AddEdge("p1", "name", graph.NewString("Alice"))
	site.AddEdge("p2", "name", graph.NewString("Bob"))
	site.AddEdge("p3", "name", graph.NewString("Carol"))
	site.AddEdge("p3", "HTML-template", graph.NewString("special"))
	site.AddEdge("p4", "name", graph.NewString("Dave"))
	ts := template.NewSet()
	ts.MustAdd("person", `person:<SFMT name>`)
	ts.MustAdd("special", `special:<SFMT name>`)
	ts.MustAdd("object", `object:<SFMT name>`)
	g := New(site, ts)
	g.PerObject["p1"] = "object"         // rule 1 beats rule 3
	g.PerCollection["People"] = "person" // rule 3
	out, err := g.Generate([]graph.OID{"p1", "p2", "p3", "p4"})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Pages["index.html"]; got != "object:Alice" {
		t.Errorf("rule 1 (object-specific): %q", got)
	}
	if got := out.Pages[out.PageFiles["p2"]]; got != "person:Bob" {
		t.Errorf("rule 3 (collection): %q", got)
	}
	if got := out.Pages[out.PageFiles["p3"]]; got != "special:Carol" {
		t.Errorf("rule 2 (HTML-template attribute): %q", got)
	}
	// p4 falls back to the built-in attribute listing.
	if got := out.Pages[out.PageFiles["p4"]]; !strings.Contains(got, "<dt>name</dt><dd>Dave</dd>") {
		t.Errorf("builtin fallback: %q", got)
	}
}

func TestDefaultTemplateOption(t *testing.T) {
	site := graph.New()
	site.AddEdge("x", "name", graph.NewString("X"))
	ts := template.NewSet()
	ts.MustAdd("dflt", `default:<SFMT name>`)
	g := New(site, ts)
	g.Default = "dflt"
	out, err := g.Generate([]graph.OID{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Pages["index.html"] != "default:X" {
		t.Errorf("got %q", out.Pages["index.html"])
	}
}

func TestEmbedCycleFallsBackToRef(t *testing.T) {
	site := graph.New()
	site.AddEdge("a", "other", graph.NewNode("b"))
	site.AddEdge("b", "other", graph.NewNode("a"))
	site.AddEdge("a", "name", graph.NewString("A"))
	site.AddEdge("b", "name", graph.NewString("B"))
	ts := template.NewSet()
	ts.MustAdd("t", `[<SFMT name>:<SFMT other EMBED>]`)
	g := New(site, ts)
	g.PerObject["a"] = "t"
	g.PerObject["b"] = "t"
	out, err := g.Generate([]graph.OID{"a"})
	if err != nil {
		t.Fatal(err)
	}
	root := out.Pages["index.html"]
	if !strings.Contains(root, "[A:[B:<a href=") {
		t.Errorf("cycle should degrade to a link:\n%s", root)
	}
}

func TestFileRendering(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "abs.txt")
	if err := os.WriteFile(txt, []byte("the <abstract> text"), 0o644); err != nil {
		t.Fatal(err)
	}
	site := graph.New()
	site.AddEdge("n", "abstract", graph.NewFile(graph.FileText, txt))
	site.AddEdge("n", "photo", graph.NewFile(graph.FileImage, "p.gif"))
	site.AddEdge("n", "paper", graph.NewFile(graph.FilePostScript, "p.ps"))
	ts := template.NewSet()
	ts.MustAdd("t", `<SFMT abstract EMBED>|<SFMT photo>|<SFMT paper>`)
	g := New(site, ts)
	g.PerObject["n"] = "t"
	out, err := g.Generate([]graph.OID{"n"})
	if err != nil {
		t.Fatal(err)
	}
	got := out.Pages["index.html"]
	if !strings.Contains(got, "the &lt;abstract&gt; text") {
		t.Errorf("embedded text file: %q", got)
	}
	if !strings.Contains(got, `<img src="p.gif">`) {
		t.Errorf("image tag: %q", got)
	}
	if !strings.Contains(got, `<a href="p.ps">`) {
		t.Errorf("postscript link: %q", got)
	}
}

func TestMissingEmbeddedFile(t *testing.T) {
	site := graph.New()
	site.AddEdge("n", "a", graph.NewFile(graph.FileText, "/nonexistent/file.txt"))
	ts := template.NewSet()
	ts.MustAdd("t", `<SFMT a EMBED>`)
	g := New(site, ts)
	g.PerObject["n"] = "t"
	out, err := g.Generate([]graph.OID{"n"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Pages["index.html"], "<!-- missing file") {
		t.Errorf("got %q", out.Pages["index.html"])
	}
}

func TestWriteDir(t *testing.T) {
	g, _ := generatorFixture(t)
	out, err := g.Generate([]graph.OID{"RootPage()"})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := out.WriteDir(filepath.Join(dir, "site")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "site", "index.html"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "My Home Page") {
		t.Error("written index.html wrong")
	}
	entries, _ := os.ReadDir(filepath.Join(dir, "site"))
	if len(entries) != out.PageCount() {
		t.Errorf("wrote %d files, want %d", len(entries), out.PageCount())
	}
}

func TestUnknownRootFails(t *testing.T) {
	g := New(graph.New(), template.NewSet())
	if _, err := g.Generate([]graph.OID{"ghost"}); err == nil {
		t.Error("unknown root should fail")
	}
}

func TestFileNameCollisions(t *testing.T) {
	site := graph.New()
	// Two oids that sanitize identically.
	site.AddEdge("a/b", "x", graph.NewNode("a.b"))
	site.AddEdge("a.b", "v", graph.NewString("second"))
	ts := template.NewSet()
	g := New(site, ts)
	out, err := g.Generate([]graph.OID{"a/b", "a.b"})
	if err != nil {
		t.Fatal(err)
	}
	if out.PageFiles["a/b"] == out.PageFiles["a.b"] {
		t.Errorf("collision not resolved: %v", out.PageFiles)
	}
	if out.PageCount() != 2 {
		t.Errorf("pages = %d, want 2", out.PageCount())
	}
}

func TestDeterministicOutput(t *testing.T) {
	g1, _ := generatorFixture(t)
	out1, err := g1.Generate([]graph.OID{"RootPage()"})
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := generatorFixture(t)
	out2, err := g2.Generate([]graph.OID{"RootPage()"})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out1.SortedPageNames()) != fmt.Sprint(out2.SortedPageNames()) {
		t.Error("page names differ between runs")
	}
	for name := range out1.Pages {
		if out1.Pages[name] != out2.Pages[name] {
			t.Errorf("page %s differs between runs", name)
		}
	}
}
