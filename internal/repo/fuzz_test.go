package repo

import "testing"

// FuzzDecodeBinary: arbitrary bytes must never panic the decoder, and
// anything it accepts must re-encode to a decodable form.
func FuzzDecodeBinary(f *testing.F) {
	f.Add(EncodeBinary(sampleGraph()))
	f.Add(EncodeBinary(allKindsGraph()))
	if fz := allKindsGraph().Freeze(); fz != nil {
		f.Add(EncodeBinaryFrozen(fz))
	}
	f.Add([]byte("SGB1"))
	f.Add([]byte("SGB2"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeBinary(data)
		if err != nil {
			return
		}
		g2, err := DecodeBinary(EncodeBinary(g))
		if err != nil {
			t.Fatalf("re-encode of accepted graph failed: %v", err)
		}
		if g.Dump() != g2.Dump() {
			t.Fatal("re-encode round trip changed the graph")
		}
	})
}
