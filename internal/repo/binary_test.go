package repo

import (
	"fmt"
	"testing"
	"testing/quick"

	"strudel/internal/ddl"
	"strudel/internal/graph"
	"strudel/internal/synth"
	"strudel/internal/wrapper/bibtex"
)

func allKindsGraph() *graph.Graph {
	g := graph.New()
	g.AddToCollection("C", "n1")
	g.AddEdge("n1", "s", graph.NewString("text with \x00 and ünïcode"))
	g.AddEdge("n1", "i", graph.NewInt(-42))
	g.AddEdge("n1", "big", graph.NewInt(1<<60))
	g.AddEdge("n1", "f", graph.NewFloat(3.14159))
	g.AddEdge("n1", "bt", graph.NewBool(true))
	g.AddEdge("n1", "bf", graph.NewBool(false))
	g.AddEdge("n1", "u", graph.NewURL("http://example.com"))
	g.AddEdge("n1", "file", graph.NewFile(graph.FilePostScript, "a.ps"))
	g.AddEdge("n1", "ref", graph.NewNode("n2"))
	g.AddNode("lonely")
	g.DeclareCollection("Empty")
	return g
}

func TestBinaryRoundTripAllKinds(t *testing.T) {
	g := allKindsGraph()
	data := EncodeBinary(g)
	got, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dump() != g.Dump() {
		t.Errorf("round trip changed graph:\n--- original\n%s--- decoded\n%s", g.Dump(), got.Dump())
	}
	// The lonely node and empty collection survive too.
	if !got.HasNode("lonely") {
		t.Error("isolated node lost")
	}
	names := got.CollectionNames()
	if len(names) != 2 {
		t.Errorf("collections = %v", names)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed uint8) bool {
		g := graph.New()
		n := int(seed%20) + 1
		for i := 0; i < n; i++ {
			oid := graph.OID(fmt.Sprintf("n%d", i))
			g.AddEdge(oid, "next", graph.NewNode(graph.OID(fmt.Sprintf("n%d", (i+1)%n))))
			g.AddEdge(oid, "v", graph.NewInt(int64(i)-10))
			if i%2 == 0 {
				g.AddToCollection("Even", oid)
			}
		}
		got, err := DecodeBinary(EncodeBinary(g))
		return err == nil && got.Dump() == g.Dump()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBinaryRejectsCorruptInput(t *testing.T) {
	good := EncodeBinary(allKindsGraph())
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		good[:4],
		good[:len(good)/2],
		append(append([]byte{}, good[:5]...), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff),
	}
	for i, c := range cases {
		if _, err := DecodeBinary(c); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
	// Bit-flip fuzzing over the body must never panic.
	for i := 4; i < len(good); i += 7 {
		mut := append([]byte{}, good...)
		mut[i] ^= 0xff
		_, _ = DecodeBinary(mut) // error or success, but no panic
	}
}

func TestBinarySmallerAndFasterThanText(t *testing.T) {
	g, err := bibtex.Load(synth.Bibliography(300, "bin"), bibtex.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bin := EncodeBinary(g)
	text := ddl.Print(g)
	t.Logf("storage: binary %d bytes, ddl text %d bytes (%.1fx)", len(bin), len(text), float64(len(text))/float64(len(bin)))
	if len(bin) >= len(text) {
		t.Errorf("binary (%d) should be smaller than text (%d)", len(bin), len(text))
	}
	got, err := DecodeBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dump() != g.Dump() {
		t.Error("binary round trip changed the bibliography graph")
	}
}

func BenchmarkBinaryVsText(b *testing.B) {
	g, err := bibtex.Load(synth.Bibliography(1000, "bin"), bibtex.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	bin := EncodeBinary(g)
	text := ddl.Print(g)
	b.Run("encode-binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EncodeBinary(g)
		}
	})
	b.Run("encode-text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ddl.Print(g)
		}
	})
	b.Run("decode-binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBinary(bin); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ddl.Parse(text); err != nil {
				b.Fatal(err)
			}
		}
	})
}
