package repo

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"strudel/internal/ddl"
	"strudel/internal/fsx"
	"strudel/internal/graph"
)

// Repository stores a web site's named graphs — its data graph and the
// site graphs derived from it (§2.1). It is safe for concurrent use.
type Repository struct {
	mu     sync.RWMutex
	graphs map[string]*Indexed
	// FS is the filesystem Save and SaveBinary write through; nil uses
	// the real one. Tests inject fault-carrying implementations here.
	FS fsx.FS
}

func (r *Repository) fsys() fsx.FS {
	if r.FS != nil {
		return r.FS
	}
	return fsx.OS
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{graphs: make(map[string]*Indexed)}
}

// Put stores (or replaces) a graph under the given name, indexing it.
func (r *Repository) Put(name string, g *graph.Graph) *Indexed {
	ix := NewIndexed(g)
	r.mu.Lock()
	r.graphs[name] = ix
	r.mu.Unlock()
	return ix
}

// PutIndexed stores an already-indexed graph under the given name.
func (r *Repository) PutIndexed(name string, ix *Indexed) {
	r.mu.Lock()
	r.graphs[name] = ix
	r.mu.Unlock()
}

// Get returns the named indexed graph, or nil if absent.
func (r *Repository) Get(name string) *Indexed {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.graphs[name]
}

// Names returns the stored graph names, sorted.
func (r *Repository) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.graphs))
	for n := range r.graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Drop removes the named graph; it reports whether it existed.
func (r *Repository) Drop(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.graphs[name]
	delete(r.graphs, name)
	return ok
}

// Save writes every stored graph to dir as <name>.ddl in the
// data-definition language, the repository's exchange format. Each file
// is replaced atomically (temp + fsync + rename), so an I/O failure or
// crash mid-save leaves every previously saved graph readable. Graphs
// are written in sorted name order, so partial failures are
// deterministic.
func (r *Repository) Save(dir string) error {
	return r.save(dir, ".ddl", func(ix *Indexed) []byte { return []byte(ddl.Print(ix.Graph())) })
}

// SaveBinary writes every stored graph to dir as <name>.sgb in the
// compact binary format, with the same atomic-replacement guarantee as
// Save. Graphs that fit the snapshot layout are written as SGB2 (the
// frozen form, which loads without re-indexing); oversized graphs fall
// back to SGB1.
func (r *Repository) SaveBinary(dir string) error {
	return r.save(dir, ".sgb", func(ix *Indexed) []byte {
		if f := ix.Frozen(); f != nil {
			return EncodeBinaryFrozen(f)
		}
		return EncodeBinary(ix.Graph())
	})
}

func (r *Repository) save(dir, ext string, encode func(*Indexed) []byte) error {
	fsys := r.fsys()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("repo: save: %w", err)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.graphs))
	for name := range r.graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, sanitizeName(name)+ext)
		if err := fsx.WriteFileAtomic(fsys, path, encode(r.graphs[name]), 0o644); err != nil {
			return fmt.Errorf("repo: save %s: %w", name, err)
		}
	}
	return nil
}

// Load reads every *.ddl file in dir into the repository, keyed by file
// base name.
func (r *Repository) Load(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("repo: load: %w", err)
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".ddl") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			return fmt.Errorf("repo: load %s: %w", ent.Name(), err)
		}
		doc, err := ddl.Parse(string(data))
		if err != nil {
			return fmt.Errorf("repo: load %s: %w", ent.Name(), err)
		}
		r.Put(strings.TrimSuffix(ent.Name(), ".ddl"), doc.Graph)
	}
	return nil
}

// LoadBinary reads every *.sgb file in dir into the repository.
func (r *Repository) LoadBinary(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("repo: load: %w", err)
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".sgb") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			return fmt.Errorf("repo: load %s: %w", ent.Name(), err)
		}
		name := strings.TrimSuffix(ent.Name(), ".sgb")
		if len(data) >= len(binaryMagicV2) && string(data[:len(binaryMagicV2)]) == binaryMagicV2 {
			f, err := graph.DecodeFrozen(data[len(binaryMagicV2):])
			if err != nil {
				return fmt.Errorf("repo: load %s: %w", ent.Name(), err)
			}
			r.PutIndexed(name, NewIndexedFrozen(f))
			continue
		}
		g, err := DecodeBinary(data)
		if err != nil {
			return fmt.Errorf("repo: load %s: %w", ent.Name(), err)
		}
		r.Put(name, g)
	}
	return nil
}

func sanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}
