package repo

import (
	"fmt"
	"testing"
	"testing/quick"

	"strudel/internal/graph"
)

func sampleGraph() *graph.Graph {
	g := graph.New()
	g.AddToCollection("Publications", "pub1")
	g.AddToCollection("Publications", "pub2")
	g.AddEdge("pub1", "title", graph.NewString("Strudel"))
	g.AddEdge("pub1", "year", graph.NewInt(1997))
	g.AddEdge("pub2", "title", graph.NewString("Boat"))
	g.AddEdge("pub2", "year", graph.NewInt(1998))
	g.AddEdge("pub1", "related", graph.NewNode("pub2"))
	return g
}

func TestIndexedEdgesLabeled(t *testing.T) {
	ix := NewIndexed(sampleGraph())
	titles := ix.EdgesLabeled("title")
	if len(titles) != 2 {
		t.Fatalf("title edges = %d, want 2", len(titles))
	}
	if n := len(ix.EdgesLabeled("nosuch")); n != 0 {
		t.Errorf("nosuch edges = %d", n)
	}
	if ix.LabelCount("year") != 2 {
		t.Errorf("LabelCount(year) = %d", ix.LabelCount("year"))
	}
}

func TestIndexedValueIndexIsGlobal(t *testing.T) {
	// §2.1: indexes on atomic values are global to the graph, not per
	// collection or attribute.
	g := sampleGraph()
	g.AddEdge("pub2", "revised", graph.NewInt(1997)) // same atom, different attribute
	ix := NewIndexed(g)
	hits := ix.In(graph.NewInt(1997))
	if len(hits) != 2 {
		t.Fatalf("In(1997) = %d edges, want 2 (global index)", len(hits))
	}
	labels := map[string]bool{}
	for _, e := range hits {
		labels[e.Label] = true
	}
	if !labels["year"] || !labels["revised"] {
		t.Errorf("In(1997) labels = %v", labels)
	}
}

func TestIndexedInEdgesForNodes(t *testing.T) {
	ix := NewIndexed(sampleGraph())
	in := ix.In(graph.NewNode("pub2"))
	if len(in) != 1 || in[0].From != "pub1" || in[0].Label != "related" {
		t.Errorf("In(&pub2) = %v", in)
	}
}

func TestIndexMaintenanceOnAddEdge(t *testing.T) {
	ix := NewIndexed(sampleGraph())
	if !ix.AddEdge("pub3", "title", graph.NewString("New")) {
		t.Fatal("AddEdge reported not-new")
	}
	if ix.AddEdge("pub3", "title", graph.NewString("New")) {
		t.Error("duplicate AddEdge should report false")
	}
	if len(ix.EdgesLabeled("title")) != 3 {
		t.Error("label index not maintained")
	}
	if len(ix.In(graph.NewString("New"))) != 1 {
		t.Error("value index not maintained")
	}
	labels := ix.Labels()
	found := false
	for _, l := range labels {
		if l == "title" {
			found = true
		}
	}
	if !found {
		t.Error("schema index missing title")
	}
}

func TestIndexedMatchesNaiveScanProperty(t *testing.T) {
	// Property: for any graph, the indexed answers equal a naive scan.
	f := func(n uint8) bool {
		g := graph.New()
		size := int(n%30) + 2
		for i := 0; i < size; i++ {
			from := graph.OID(fmt.Sprintf("n%d", i))
			g.AddEdge(from, fmt.Sprintf("l%d", i%4), graph.NewInt(int64(i%5)))
			g.AddEdge(from, "next", graph.NewNode(graph.OID(fmt.Sprintf("n%d", (i+1)%size))))
		}
		ix := NewIndexed(g)
		for lbl := 0; lbl < 4; lbl++ {
			label := fmt.Sprintf("l%d", lbl)
			var naive int
			g.Edges(func(e graph.Edge) bool {
				if e.Label == label {
					naive++
				}
				return true
			})
			if len(ix.EdgesLabeled(label)) != naive {
				return false
			}
		}
		for v := 0; v < 5; v++ {
			val := graph.NewInt(int64(v))
			var naive int
			g.Edges(func(e graph.Edge) bool {
				if e.To == val {
					naive++
				}
				return true
			})
			if len(ix.In(val)) != naive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestIndexedMerge(t *testing.T) {
	ix := Empty()
	ix.Merge(sampleGraph())
	if ix.NumEdges() != 5 {
		t.Errorf("NumEdges = %d, want 5", ix.NumEdges())
	}
	if len(ix.EdgesLabeled("title")) != 2 {
		t.Error("merge did not index edges")
	}
	if !ix.InCollection("Publications", "pub1") {
		t.Error("merge did not carry collections")
	}
	// Merging again is a no-op under set semantics.
	ix.Merge(sampleGraph())
	if ix.NumEdges() != 5 {
		t.Errorf("NumEdges after re-merge = %d, want 5", ix.NumEdges())
	}
	if len(ix.EdgesLabeled("title")) != 2 {
		t.Error("re-merge duplicated index entries")
	}
}

func TestRepositoryPutGetDrop(t *testing.T) {
	r := NewRepository()
	r.Put("data", sampleGraph())
	if r.Get("data") == nil {
		t.Fatal("Get after Put returned nil")
	}
	if r.Get("absent") != nil {
		t.Error("Get(absent) should be nil")
	}
	names := r.Names()
	if len(names) != 1 || names[0] != "data" {
		t.Errorf("Names = %v", names)
	}
	if !r.Drop("data") || r.Drop("data") {
		t.Error("Drop semantics wrong")
	}
}

func TestRepositorySaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := NewRepository()
	r.Put("data", sampleGraph())
	g2 := graph.New()
	g2.AddEdge("x", "a", graph.NewString("v"))
	r.Put("site graph", g2) // name needs sanitizing
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	r2 := NewRepository()
	if err := r2.Load(dir); err != nil {
		t.Fatal(err)
	}
	got := r2.Get("data")
	if got == nil {
		t.Fatal("data graph missing after load")
	}
	if got.Graph().Dump() != sampleGraph().Dump() {
		t.Errorf("data graph changed by round trip:\n%s\nvs\n%s", got.Graph().Dump(), sampleGraph().Dump())
	}
	if r2.Get("site_graph") == nil {
		t.Error("sanitized graph name missing after load")
	}
}

func TestRepositoryBinarySaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := NewRepository()
	r.Put("data", sampleGraph())
	if err := r.SaveBinary(dir); err != nil {
		t.Fatal(err)
	}
	r2 := NewRepository()
	if err := r2.LoadBinary(dir); err != nil {
		t.Fatal(err)
	}
	got := r2.Get("data")
	if got == nil || got.Graph().Dump() != sampleGraph().Dump() {
		t.Error("binary repository round trip failed")
	}
	if err := r2.LoadBinary("/nonexistent/xyz"); err == nil {
		t.Error("LoadBinary of missing dir should fail")
	}
}

func TestRepositoryLoadMissingDir(t *testing.T) {
	r := NewRepository()
	if err := r.Load("/nonexistent/path/xyz"); err == nil {
		t.Error("Load of missing dir should fail")
	}
}

func TestRepositoryConcurrentAccess(t *testing.T) {
	r := NewRepository()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			name := fmt.Sprintf("g%d", i%4)
			r.Put(name, sampleGraph())
			_ = r.Get(name)
			_ = r.Names()
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
