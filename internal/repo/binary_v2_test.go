package repo

import (
	"encoding/binary"
	"strings"
	"testing"

	"strudel/internal/graph"
)

func freezeAllKinds(t *testing.T) *graph.Frozen {
	t.Helper()
	f := allKindsGraph().Freeze()
	if f == nil {
		t.Fatal("Freeze returned nil")
	}
	return f
}

func TestBinaryV2RoundTrip(t *testing.T) {
	g := allKindsGraph()
	data := EncodeBinaryFrozen(freezeAllKinds(t))
	if !strings.HasPrefix(string(data), binaryMagicV2) {
		t.Fatalf("magic = %q", data[:4])
	}
	// DecodeBinary dispatches on the magic and yields the same graph.
	got, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dump() != g.Dump() {
		t.Errorf("SGB2 round trip changed graph:\n--- original\n%s--- decoded\n%s", g.Dump(), got.Dump())
	}
	// DecodeBinaryFrozen gives a queryable snapshot directly.
	f, err := DecodeBinaryFrozen(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumNodes() != g.NumNodes() || f.NumEdges() != g.NumEdges() {
		t.Errorf("snapshot sizes: %d/%d want %d/%d", f.NumNodes(), f.NumEdges(), g.NumNodes(), g.NumEdges())
	}
}

// Mixed formats: an SGB1 payload must round-trip through the frozen
// decoder, and an SGB2 payload through the graph decoder, with identical
// contents either way.
func TestBinaryMixedFormats(t *testing.T) {
	g := allKindsGraph()
	v1 := EncodeBinary(g)
	v2 := EncodeBinaryFrozen(freezeAllKinds(t))

	fromV1, err := DecodeBinaryFrozen(v1)
	if err != nil {
		t.Fatal(err)
	}
	fromV2, err := DecodeBinaryFrozen(v2)
	if err != nil {
		t.Fatal(err)
	}
	if fromV1.Thaw().Dump() != fromV2.Thaw().Dump() {
		t.Error("SGB1 and SGB2 decode to different graphs")
	}
	// Re-freezing a thawed SGB2 snapshot re-encodes byte-identically: the
	// format is canonical.
	again := EncodeBinaryFrozen(fromV2.Thaw().Freeze())
	if string(again) != string(v2) {
		t.Error("SGB2 re-encode is not byte-identical")
	}
}

func TestBinaryV2RejectsCorruptInput(t *testing.T) {
	good := EncodeBinaryFrozen(freezeAllKinds(t))
	// Every truncation of the payload must error, never panic.
	for n := len(binaryMagicV2); n < len(good); n++ {
		if _, err := DecodeBinary(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Bit-flip fuzzing over the body must never panic.
	for i := len(binaryMagicV2); i < len(good); i++ {
		mut := append([]byte{}, good...)
		mut[i] ^= 0xff
		_, _ = DecodeBinary(mut)
	}
}

// buildV2 assembles a minimal syntactically valid SGB2 payload by hand so
// individual fields can be corrupted precisely.
func buildV2(edit func(section string, b []byte) []byte) []byte {
	id := func(i int) []byte { return binary.AppendUvarint(nil, uint64(i)) }
	var out []byte
	out = append(out, binaryMagicV2...)
	sec := func(name string, b []byte) {
		if edit != nil {
			b = edit(name, b)
		}
		out = append(out, b...)
	}
	// dictionary: "a", "l", "n1", "n2"
	var dict []byte
	dict = append(dict, id(4)...)
	for _, s := range []string{"a", "l", "n1", "n2"} {
		dict = append(dict, id(len(s))...)
		dict = append(dict, s...)
	}
	sec("dict", dict)
	sec("labels", append(id(1), id(1)...))                  // ["l"]
	sec("nodes", append(append(id(2), id(2)...), id(3)...)) // ["n1","n2"]
	sec("strs", append(id(1), id(0)...))                    // ["a"]
	sec("urls", id(0))
	sec("ints", id(0))
	sec("floats", id(0))
	sec("files", id(0))
	// out CSR: n1 has two edges l→"a", l→node n2; n2 has none.
	strRef := int(uint32(graph.KindString) << 28)
	nodeRef := int(uint32(graph.KindNode)<<28 | 1)
	edges := id(2)
	edges = append(edges, id(0)...) // label l
	edges = append(edges, id(nodeRef)...)
	edges = append(edges, id(0)...)
	edges = append(edges, id(strRef)...)
	edges = append(edges, id(0)...) // n2: degree 0
	sec("csr", edges)
	sec("colls", id(0))
	return out
}

func TestBinaryV2DecodeErrorPaths(t *testing.T) {
	// Baseline must decode.
	if _, err := DecodeBinary(buildV2(nil)); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	id := func(i int) []byte { return binary.AppendUvarint(nil, uint64(i)) }
	cases := []struct {
		name, section string
		edit          func([]byte) []byte
		wantErr       string
	}{
		{"truncated dictionary", "dict", func(b []byte) []byte {
			// One entry whose declared length overruns the input.
			return append(id(1), id(1000)...)
		}, "truncated"},
		{"truncated string arena", "strs", func(b []byte) []byte { return append(id(2), id(0)...) }, ""},
		{"label ref out of range", "labels", func(b []byte) []byte { return append(id(1), id(9)...) }, "out of range"},
		{"labels unsorted", "labels", func(b []byte) []byte { return append(append(id(2), id(1)...), id(1)...) }, "sorted"},
		{"nodes unsorted", "nodes", func(b []byte) []byte { return append(append(id(2), id(3)...), id(2)...) }, "sorted"},
		{"edge label out of range", "csr", func(b []byte) []byte {
			e := id(2)
			e = append(e, id(7)...) // label id 7: out of range
			e = append(e, id(0)...)
			e = append(e, id(0)...)
			e = append(e, id(0)...)
			return append(e, id(0)...)
		}, "label id 7 out of range"},
		{"edge vref bad kind", "csr", func(b []byte) []byte {
			e := id(1)
			e = append(e, id(0)...)
			e = append(e, id(int(uint32(15)<<28))...) // kind 15: unknown
			return append(e, id(0)...)
		}, "unknown"},
		{"edge vref out of arena", "csr", func(b []byte) []byte {
			e := id(1)
			e = append(e, id(0)...)
			e = append(e, id(int(uint32(graph.KindString)<<28|5))...) // strs has 1 entry
			return append(e, id(0)...)
		}, "out of range"},
		{"collection member out of range", "colls", func(b []byte) []byte {
			c := id(1)
			c = append(c, id(0)...) // name "a"
			c = append(c, id(1)...)
			return append(c, id(9)...) // member id 9: only 2 nodes
		}, "out of range"},
		{"trailing bytes", "colls", func(b []byte) []byte { return append(b, 0) }, "trailing"},
	}
	for _, tc := range cases {
		payload := buildV2(func(section string, b []byte) []byte {
			if section == tc.section {
				return tc.edit(b)
			}
			return b
		})
		_, err := DecodeBinary(payload)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestRepositorySaveLoadBinaryV2(t *testing.T) {
	dir := t.TempDir()
	r := NewRepository()
	g := allKindsGraph()
	r.Put("data", g)
	if err := r.SaveBinary(dir); err != nil {
		t.Fatal(err)
	}
	r2 := NewRepository()
	if err := r2.LoadBinary(dir); err != nil {
		t.Fatal(err)
	}
	ix := r2.Get("data")
	if ix == nil {
		t.Fatal("graph not loaded")
	}
	if ix.Graph().Dump() != g.Dump() {
		t.Error("SGB2 save/load changed the graph")
	}
	// The loaded Indexed adopts the decoded snapshot: Frozen() must not
	// rebuild it.
	if ix.Frozen() == nil {
		t.Fatal("loaded Indexed has no snapshot")
	}
}
