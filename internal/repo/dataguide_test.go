package repo

import (
	"strings"
	"testing"

	"strudel/internal/graph"
)

func guideGraph() *graph.Graph {
	g := graph.New()
	g.AddToCollection("Pubs", "p1")
	g.AddToCollection("Pubs", "p2")
	g.AddEdge("p1", "title", graph.NewString("A"))
	g.AddEdge("p1", "author", graph.NewNode("a1"))
	g.AddEdge("p2", "title", graph.NewString("B"))
	g.AddEdge("p2", "author", graph.NewNode("a2"))
	g.AddEdge("p2", "journal", graph.NewString("TODS")) // irregular
	g.AddEdge("a1", "name", graph.NewString("Mary"))
	g.AddEdge("a2", "name", graph.NewString("Dan"))
	g.AddEdge("a2", "inst", graph.NewString("ATT")) // irregular
	return g
}

func TestDataGuidePaths(t *testing.T) {
	dg := BuildDataGuide(NewIndexed(guideGraph()), nil)
	paths := dg.Paths(3)
	want := []string{"author", "author.inst", "author.name", "journal", "title"}
	if strings.Join(paths, ",") != strings.Join(want, ",") {
		t.Errorf("Paths = %v, want %v", paths, want)
	}
}

func TestDataGuideEveryPathOnce(t *testing.T) {
	// Strong dataguide property: each label path appears exactly once
	// even when many objects share it.
	g := graph.New()
	for i := 0; i < 20; i++ {
		oid := graph.OID(string(rune('a' + i)))
		g.AddToCollection("C", oid)
		g.AddEdge(oid, "x", graph.NewInt(int64(i)))
	}
	dg := BuildDataGuide(NewIndexed(g), nil)
	paths := dg.Paths(2)
	if len(paths) != 1 || paths[0] != "x" {
		t.Errorf("Paths = %v", paths)
	}
	if dg.Size() != 2 { // root + the x target
		t.Errorf("Size = %d", dg.Size())
	}
}

func TestDataGuideAnnotations(t *testing.T) {
	dg := BuildDataGuide(NewIndexed(guideGraph()), nil)
	str := dg.String()
	// Two author objects are summarized by one guide node annotated 2.
	if !strings.Contains(str, "author (2)") {
		t.Errorf("guide:\n%s", str)
	}
	// Only one journal atom.
	if !strings.Contains(str, "journal (1)") {
		t.Errorf("guide:\n%s", str)
	}
}

func TestDataGuideCycles(t *testing.T) {
	g := graph.New()
	g.AddToCollection("C", "a")
	g.AddEdge("a", "next", graph.NewNode("b"))
	g.AddEdge("b", "next", graph.NewNode("a"))
	dg := BuildDataGuide(NewIndexed(g), nil)
	// Must terminate; paths are cut at cycles or maxDepth.
	paths := dg.Paths(5)
	if len(paths) == 0 {
		t.Error("cyclic guide should still report paths")
	}
	for _, p := range paths {
		if strings.Count(p, "next") > 5 {
			t.Errorf("path too deep: %s", p)
		}
	}
}

func TestDataGuideExplicitRoots(t *testing.T) {
	dg := BuildDataGuide(NewIndexed(guideGraph()), []graph.OID{"a2"})
	paths := dg.Paths(2)
	want := []string{"inst", "name"}
	if strings.Join(paths, ",") != strings.Join(want, ",") {
		t.Errorf("Paths = %v, want %v", paths, want)
	}
}

func TestDataGuideDeterministic(t *testing.T) {
	a := BuildDataGuide(NewIndexed(guideGraph()), nil).String()
	b := BuildDataGuide(NewIndexed(guideGraph()), nil).String()
	if a != b {
		t.Error("dataguide not deterministic")
	}
}
