// Package repo implements Strudel's data repository for semistructured
// data (§2.1). Unlike repositories in traditional relational or
// object-oriented systems, it cannot rely on schema information to organize
// data, so it fully indexes both the schema and the data: one index holds
// the names of all collections and attributes in a graph, others hold the
// extents of each collection and attribute, and an index on atomic values
// is global to the graph rather than per collection or attribute. The paper
// notes that maintaining these indexes is expensive but that they pay for
// themselves in query evaluation — benchmark E6 reproduces both halves of
// that claim.
package repo

import (
	"sort"
	"sync"

	"strudel/internal/graph"
)

// Indexed wraps a graph with the repository's full set of indexes. It
// satisfies struql.Source, so queries run against it take indexed paths the
// plain graph cannot offer. Mutations must go through Indexed's methods so
// the indexes stay consistent. Not safe for concurrent mutation.
type Indexed struct {
	g *graph.Graph

	byLabel map[string][]graph.Edge // attribute extent: label → edges
	byValue map[string][]graph.Edge // global value index: value key → edges targeting it
	inEdges map[graph.OID][]graph.Edge

	// labelMu guards the lazily rebuilt labelSet cache: concurrent
	// readers (parallel query evaluation, concurrent version builds)
	// may both find it stale and rebuild it.
	labelMu  sync.Mutex
	labelSet []string // sorted cache, invalidated on new label
	dirty    bool

	// statMu guards labelStats, the per-label selectivity cache behind
	// LabelStats; entries are invalidated label-by-label on mutation.
	statMu     sync.Mutex
	labelStats map[string]labelStat

	// frozenMu guards the lazily built compact snapshot. It is built on
	// the first Frozen call after a mutation (not eagerly, so write-heavy
	// workloads like index-maintenance never pay for it) and dropped by
	// any mutation.
	frozenMu    sync.Mutex
	frozen      *graph.Frozen
	frozenBuilt bool
}

// labelStat caches one label's selectivity summary.
type labelStat struct {
	count, sources, targets int
}

// NewIndexed builds all indexes over g. The graph is adopted, not copied;
// callers must mutate it only through Indexed afterwards.
func NewIndexed(g *graph.Graph) *Indexed {
	ix := &Indexed{
		g:       g,
		byLabel: make(map[string][]graph.Edge),
		byValue: make(map[string][]graph.Edge),
		inEdges: make(map[graph.OID][]graph.Edge),
	}
	g.Edges(func(e graph.Edge) bool {
		ix.index(e)
		return true
	})
	ix.dirty = true
	return ix
}

// Empty returns an Indexed over a fresh empty graph.
func Empty() *Indexed { return NewIndexed(graph.New()) }

// NewIndexedFrozen builds an Indexed from a decoded snapshot, adopting it
// as the already-built frozen view so the first query never re-freezes.
func NewIndexedFrozen(f *graph.Frozen) *Indexed {
	ix := NewIndexed(f.Thaw())
	ix.frozen = f
	ix.frozenBuilt = true
	return ix
}

// Frozen returns the compact read-optimized snapshot of the current
// state, building it on first use and caching it until the next
// mutation. It returns nil when the graph exceeds the snapshot's packed
// id capacity; callers fall back to the mutable representation.
func (ix *Indexed) Frozen() *graph.Frozen {
	ix.frozenMu.Lock()
	defer ix.frozenMu.Unlock()
	if !ix.frozenBuilt {
		ix.frozen = ix.g.Freeze()
		ix.frozenBuilt = true
	}
	return ix.frozen
}

// invalidateFrozen drops the snapshot; every mutation path calls it.
func (ix *Indexed) invalidateFrozen() {
	ix.frozenMu.Lock()
	ix.frozen = nil
	ix.frozenBuilt = false
	ix.frozenMu.Unlock()
}

func (ix *Indexed) index(e graph.Edge) {
	if _, known := ix.byLabel[e.Label]; !known {
		ix.dirty = true
	}
	ix.statMu.Lock()
	delete(ix.labelStats, e.Label)
	ix.statMu.Unlock()
	ix.byLabel[e.Label] = append(ix.byLabel[e.Label], e)
	if e.To.IsNode() {
		ix.inEdges[e.To.OID()] = append(ix.inEdges[e.To.OID()], e)
	} else {
		key := e.To.Key()
		ix.byValue[key] = append(ix.byValue[key], e)
	}
}

// Graph exposes the underlying graph for read-only use.
func (ix *Indexed) Graph() *graph.Graph { return ix.g }

// AddEdge inserts an edge, maintaining every index. It reports whether the
// edge was new.
func (ix *Indexed) AddEdge(from graph.OID, label string, to graph.Value) bool {
	if !ix.g.AddEdge(from, label, to) {
		return false
	}
	ix.invalidateFrozen()
	ix.index(graph.Edge{From: from, Label: label, To: to})
	return true
}

// AddNode ensures the node exists.
func (ix *Indexed) AddNode(oid graph.OID) {
	if !ix.g.HasNode(oid) {
		ix.invalidateFrozen()
	}
	ix.g.AddNode(oid)
}

// AddToCollection adds oid to the named collection.
func (ix *Indexed) AddToCollection(coll string, oid graph.OID) {
	ix.invalidateFrozen()
	ix.g.AddToCollection(coll, oid)
}

// Merge indexes and inserts every edge, node, and membership of other.
func (ix *Indexed) Merge(other *graph.Graph) {
	ix.invalidateFrozen()
	for _, oid := range other.Nodes() {
		ix.g.AddNode(oid)
	}
	other.Edges(func(e graph.Edge) bool {
		ix.AddEdge(e.From, e.Label, e.To)
		return true
	})
	for _, coll := range other.CollectionNames() {
		ix.g.DeclareCollection(coll)
		for _, m := range other.Collection(coll) {
			ix.g.AddToCollection(coll, m)
		}
	}
}

// --- struql.Source interface ---

// Collection returns the members of coll, sorted.
func (ix *Indexed) Collection(name string) []graph.OID { return ix.g.Collection(name) }

// InCollection reports membership.
func (ix *Indexed) InCollection(name string, oid graph.OID) bool {
	return ix.g.InCollection(name, oid)
}

// CollectionNames returns all collection names, sorted.
func (ix *Indexed) CollectionNames() []string { return ix.g.CollectionNames() }

// CollectionSize returns the extent size of a collection.
func (ix *Indexed) CollectionSize(name string) int { return ix.g.CollectionSize(name) }

// Out returns oid's outgoing edges, sorted.
func (ix *Indexed) Out(oid graph.OID) []graph.Edge { return ix.g.Out(oid) }

// OutLabel returns the values of oid's edges with the given label.
func (ix *Indexed) OutLabel(oid graph.OID, label string) []graph.Value {
	return ix.g.OutLabel(oid, label)
}

// EdgesLabeled returns every edge with the given label, via the attribute
// extent index.
func (ix *Indexed) EdgesLabeled(label string) []graph.Edge {
	edges := ix.byLabel[label]
	out := make([]graph.Edge, len(edges))
	copy(out, edges)
	return out
}

// In returns every edge whose target equals v: node in-edges via the
// in-edge index, atoms via the global value index.
func (ix *Indexed) In(v graph.Value) []graph.Edge {
	var edges []graph.Edge
	if v.IsNode() {
		edges = ix.inEdges[v.OID()]
	} else {
		edges = ix.byValue[v.Key()]
	}
	out := make([]graph.Edge, len(edges))
	copy(out, edges)
	return out
}

// Nodes returns all node OIDs, sorted.
func (ix *Indexed) Nodes() []graph.OID { return ix.g.Nodes() }

// Labels returns every attribute name, sorted — the schema index.
func (ix *Indexed) Labels() []string {
	ix.labelMu.Lock()
	defer ix.labelMu.Unlock()
	if ix.dirty {
		ix.labelSet = ix.labelSet[:0]
		for l := range ix.byLabel {
			ix.labelSet = append(ix.labelSet, l)
		}
		sort.Strings(ix.labelSet)
		ix.dirty = false
	}
	out := make([]string, len(ix.labelSet))
	copy(out, ix.labelSet)
	return out
}

// LabelCount returns the number of edges with the given label, an optimizer
// statistic.
func (ix *Indexed) LabelCount(label string) int { return len(ix.byLabel[label]) }

// LabelStats returns one label's selectivity summary — edge count,
// distinct sources, distinct targets — from the attribute extent index,
// caching the distinct counts until the label is next mutated. It is
// the repository's implementation of struql.LabelStatser: the planner's
// statistics come from here without a graph scan.
func (ix *Indexed) LabelStats(label string) (count, sources, targets int) {
	ix.statMu.Lock()
	if st, ok := ix.labelStats[label]; ok {
		ix.statMu.Unlock()
		return st.count, st.sources, st.targets
	}
	ix.statMu.Unlock()
	// A built snapshot has the distinct counts precomputed.
	ix.frozenMu.Lock()
	f := ix.frozen
	ix.frozenMu.Unlock()
	if f != nil {
		return f.LabelStats(label)
	}
	edges := ix.byLabel[label]
	srcs := make(map[graph.OID]struct{}, len(edges))
	tgts := make(map[string]struct{}, len(edges))
	for _, e := range edges {
		srcs[e.From] = struct{}{}
		tgts[e.To.Key()] = struct{}{}
	}
	st := labelStat{count: len(edges), sources: len(srcs), targets: len(tgts)}
	ix.statMu.Lock()
	if ix.labelStats == nil {
		ix.labelStats = make(map[string]labelStat)
	}
	ix.labelStats[label] = st
	ix.statMu.Unlock()
	return st.count, st.sources, st.targets
}

// NumEdges returns the total number of edges.
func (ix *Indexed) NumEdges() int { return ix.g.NumEdges() }

// NumNodes returns the total number of nodes.
func (ix *Indexed) NumNodes() int { return ix.g.NumNodes() }
