package repo

import (
	"fmt"
	"sort"
	"strings"

	"strudel/internal/graph"
)

// DataGuide is a strong dataguide over a graph: a deterministic summary
// in which every distinct label path from the roots appears exactly once.
// It is the structure-discovery technique §7 calls for when "schema
// information is missing or changes frequently": the repository can
// derive a schema after the fact instead of requiring one up front, and
// site builders can inspect what paths actually occur before writing
// queries against them.
type DataGuide struct {
	// Root is the index of the root guide node in Nodes.
	Root int
	// Nodes holds, per guide node, the outgoing labels → guide-node index.
	Nodes []map[string]int
	// Annotations counts, per guide node, how many graph objects and
	// atoms the node summarizes.
	Annotations []int
}

// BuildDataGuide computes the strong dataguide of the subgraph reachable
// from the given roots (all collection members when roots is empty),
// using the classic determinization-style construction: each guide node
// corresponds to a set of graph objects, and following label l from a
// guide node leads to the guide node for the set of all l-targets.
func BuildDataGuide(src interface {
	Out(graph.OID) []graph.Edge
	CollectionNames() []string
	Collection(string) []graph.OID
}, roots []graph.OID) *DataGuide {
	if len(roots) == 0 {
		seen := map[graph.OID]bool{}
		for _, c := range src.CollectionNames() {
			for _, m := range src.Collection(c) {
				if !seen[m] {
					seen[m] = true
					roots = append(roots, m)
				}
			}
		}
		sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	}
	dg := &DataGuide{}
	memo := map[string]int{}
	var build func(set []graph.OID, atoms int) int
	build = func(set []graph.OID, atoms int) int {
		key := oidSetKey(set)
		if idx, ok := memo[key]; ok {
			return idx
		}
		idx := len(dg.Nodes)
		memo[key] = idx
		dg.Nodes = append(dg.Nodes, nil)
		dg.Annotations = append(dg.Annotations, len(set)+atoms)
		// Group targets by label.
		byLabel := map[string][]graph.OID{}
		atomCount := map[string]int{}
		seenPer := map[string]map[graph.OID]bool{}
		for _, oid := range set {
			for _, e := range src.Out(oid) {
				if e.To.IsNode() {
					if seenPer[e.Label] == nil {
						seenPer[e.Label] = map[graph.OID]bool{}
					}
					if !seenPer[e.Label][e.To.OID()] {
						seenPer[e.Label][e.To.OID()] = true
						byLabel[e.Label] = append(byLabel[e.Label], e.To.OID())
					}
				} else {
					atomCount[e.Label]++
				}
			}
		}
		labels := make([]string, 0, len(byLabel)+len(atomCount))
		for l := range byLabel {
			labels = append(labels, l)
		}
		for l := range atomCount {
			if _, dup := byLabel[l]; !dup {
				labels = append(labels, l)
			}
		}
		sort.Strings(labels)
		out := make(map[string]int, len(labels))
		for _, l := range labels {
			targets := byLabel[l]
			sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
			out[l] = build(targets, atomCount[l])
		}
		dg.Nodes[idx] = out
		return idx
	}
	dg.Root = build(roots, 0)
	return dg
}

func oidSetKey(set []graph.OID) string {
	var b strings.Builder
	for _, oid := range set {
		b.WriteString(string(oid))
		b.WriteByte(0)
	}
	return b.String()
}

// Paths returns every distinct label path in the guide up to maxDepth,
// sorted — the "what can I query?" view of a schema-less graph.
func (dg *DataGuide) Paths(maxDepth int) []string {
	var out []string
	var walk func(node int, prefix string, depth int, onPath map[int]bool)
	walk = func(node int, prefix string, depth int, onPath map[int]bool) {
		if depth >= maxDepth || onPath[node] {
			return
		}
		onPath[node] = true
		defer delete(onPath, node)
		labels := make([]string, 0, len(dg.Nodes[node]))
		for l := range dg.Nodes[node] {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			p := prefix + l
			out = append(out, p)
			walk(dg.Nodes[node][l], p+".", depth+1, onPath)
		}
	}
	walk(dg.Root, "", 0, map[int]bool{})
	sort.Strings(out)
	return out
}

// Size returns the number of guide nodes.
func (dg *DataGuide) Size() int { return len(dg.Nodes) }

// String renders the guide as an indented tree (cycles cut).
func (dg *DataGuide) String() string {
	var b strings.Builder
	var walk func(node, depth int, onPath map[int]bool)
	walk = func(node, depth int, onPath map[int]bool) {
		if depth > 8 || onPath[node] {
			return
		}
		onPath[node] = true
		defer delete(onPath, node)
		labels := make([]string, 0, len(dg.Nodes[node]))
		for l := range dg.Nodes[node] {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			child := dg.Nodes[node][l]
			fmt.Fprintf(&b, "%s%s (%d)\n", strings.Repeat("  ", depth), l, dg.Annotations[child])
			walk(child, depth+1, onPath)
		}
	}
	walk(dg.Root, 0, map[int]bool{})
	return b.String()
}
