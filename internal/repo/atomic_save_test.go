package repo

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"strudel/internal/ddl"
	"strudel/internal/faultfs"
	"strudel/internal/fsx"
	"strudel/internal/graph"
)

func graphWithEdge(label string) *graph.Graph {
	g := graph.New()
	g.AddToCollection("C", "n1")
	g.AddEdge("n1", label, graph.NewString("v"))
	return g
}

// TestSaveAtomicReplacement: a torn write while re-saving must leave the
// previously saved file fully readable, not half-overwritten.
func TestSaveAtomicReplacement(t *testing.T) {
	for _, tc := range []struct {
		name string
		save func(*Repository, string) error
		ext  string
	}{
		{"ddl", (*Repository).Save, ".ddl"},
		{"binary", (*Repository).SaveBinary, ".sgb"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			r := NewRepository()
			r.Put("data", graphWithEdge("first"))
			if err := tc.save(r, dir); err != nil {
				t.Fatal(err)
			}
			before, err := os.ReadFile(filepath.Join(dir, "data"+tc.ext))
			if err != nil {
				t.Fatal(err)
			}

			r.Put("data", graphWithEdge("second"))
			r.FS = &faultfs.FS{Inner: fsx.OS, ShortWriteN: 1}
			if err := tc.save(r, dir); !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("save err = %v, want injected fault", err)
			}
			after, err := os.ReadFile(filepath.Join(dir, "data"+tc.ext))
			if err != nil {
				t.Fatal(err)
			}
			if string(after) != string(before) {
				t.Error("failed save corrupted the previously saved file")
			}
			// The torn temp file must not survive.
			if _, err := os.Stat(filepath.Join(dir, "data"+tc.ext+".tmp")); !os.IsNotExist(err) {
				t.Error("temp file left behind after failed save")
			}

			// A clean retry replaces the file and round-trips.
			r.FS = nil
			if err := tc.save(r, dir); err != nil {
				t.Fatal(err)
			}
			r2 := NewRepository()
			if tc.ext == ".ddl" {
				err = r2.Load(dir)
			} else {
				err = r2.LoadBinary(dir)
			}
			if err != nil {
				t.Fatal(err)
			}
			if got := ddl.Print(r2.Get("data").Graph()); got != ddl.Print(graphWithEdge("second")) {
				t.Errorf("reloaded graph = %s", got)
			}
		})
	}
}

// TestSaveFailureOrderDeterministic: with several graphs, the first write
// in sorted name order reports the failure.
func TestSaveFailureOrderDeterministic(t *testing.T) {
	r := NewRepository()
	r.Put("zeta", graphWithEdge("z"))
	r.Put("alpha", graphWithEdge("a"))
	r.FS = &faultfs.FS{Inner: fsx.OS, FailWriteN: 1}
	err := r.Save(t.TempDir())
	if err == nil || !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if want := "repo: save alpha:"; !containsPrefix(err.Error(), want) {
		t.Errorf("err = %q, want it to name alpha (first in sorted order)", err)
	}
}

func containsPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
