package repo

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"strudel/internal/graph"
)

// Binary graph serialization — the "efficient storage representations for
// semistructured data" direction §7 points at. The format is a string
// table plus varint-encoded structure; with no schema to describe rows,
// attribute names repeat constantly, so interning them is where the
// compression comes from. Compared with the textual data-definition
// language, the binary form is typically 3–6× smaller and an order of
// magnitude faster to decode (BenchmarkBinaryVsText in this package).
//
// Layout:
//
//	magic "SGB1"
//	stringTable: varint count, then per string varint length + bytes
//	nodes:       varint count, then per node a string-table ref
//	edges:       varint count, then per edge from-ref, label-ref, value
//	collections: varint count, then per collection name-ref,
//	             varint member count, member refs
//
// Values encode as a kind byte followed by a payload: node/string/url/
// file refs into the string table (files also carry a type byte), ints as
// zigzag varints, floats as IEEE-754 bits, bools as 0/1.

const (
	binaryMagic   = "SGB1"
	binaryMagicV2 = "SGB2"
)

// EncodeBinaryFrozen serializes a frozen snapshot in the SGB2 format:
// the magic followed by the snapshot's own binary payload (dictionary,
// typed arenas, out-adjacency CSR, collections — see internal/graph).
// SGB2 files decode straight into a queryable snapshot without
// re-indexing; DecodeBinary accepts both formats.
func EncodeBinaryFrozen(f *graph.Frozen) []byte {
	out := make([]byte, 0, 1<<12)
	out = append(out, binaryMagicV2...)
	return graph.AppendFrozen(out, f)
}

// DecodeBinaryFrozen deserializes either binary format into a frozen
// snapshot: SGB2 directly, SGB1 by decoding the mutable graph and
// freezing it.
func DecodeBinaryFrozen(data []byte) (*graph.Frozen, error) {
	if len(data) >= len(binaryMagicV2) && string(data[:len(binaryMagicV2)]) == binaryMagicV2 {
		return graph.DecodeFrozen(data[len(binaryMagicV2):])
	}
	g, err := DecodeBinary(data)
	if err != nil {
		return nil, err
	}
	f := g.Freeze()
	if f == nil {
		return nil, fmt.Errorf("repo: binary: graph too large to freeze")
	}
	return f, nil
}

// EncodeBinary serializes a graph in the compact binary format.
func EncodeBinary(g *graph.Graph) []byte {
	enc := &binEncoder{index: map[string]uint64{}}
	// Pass 1: intern every string.
	for _, oid := range g.Nodes() {
		enc.intern(string(oid))
	}
	g.Edges(func(e graph.Edge) bool {
		enc.intern(string(e.From))
		enc.intern(e.Label)
		enc.internValue(e.To)
		return true
	})
	for _, c := range g.CollectionNames() {
		enc.intern(c)
		for _, m := range g.Collection(c) {
			enc.intern(string(m))
		}
	}
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	putUvarint(&buf, uint64(len(enc.strings)))
	for _, s := range enc.strings {
		putUvarint(&buf, uint64(len(s)))
		buf.WriteString(s)
	}
	nodes := g.Nodes()
	putUvarint(&buf, uint64(len(nodes)))
	for _, oid := range nodes {
		putUvarint(&buf, enc.index[string(oid)])
	}
	edges := g.AllEdges()
	putUvarint(&buf, uint64(len(edges)))
	for _, e := range edges {
		putUvarint(&buf, enc.index[string(e.From)])
		putUvarint(&buf, enc.index[e.Label])
		enc.writeValue(&buf, e.To)
	}
	colls := g.CollectionNames()
	putUvarint(&buf, uint64(len(colls)))
	for _, c := range colls {
		putUvarint(&buf, enc.index[c])
		members := g.Collection(c)
		putUvarint(&buf, uint64(len(members)))
		for _, m := range members {
			putUvarint(&buf, enc.index[string(m)])
		}
	}
	return buf.Bytes()
}

type binEncoder struct {
	strings []string
	index   map[string]uint64
}

func (e *binEncoder) intern(s string) {
	if _, ok := e.index[s]; !ok {
		e.index[s] = uint64(len(e.strings))
		e.strings = append(e.strings, s)
	}
}

func (e *binEncoder) internValue(v graph.Value) {
	switch v.Kind() {
	case graph.KindNode:
		e.intern(string(v.OID()))
	case graph.KindString, graph.KindURL, graph.KindFile:
		e.intern(v.Str())
	}
}

func putUvarint(buf *bytes.Buffer, x uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], x)
	buf.Write(tmp[:n])
}

func (e *binEncoder) writeValue(buf *bytes.Buffer, v graph.Value) {
	buf.WriteByte(byte(v.Kind()))
	switch v.Kind() {
	case graph.KindNode:
		putUvarint(buf, e.index[string(v.OID())])
	case graph.KindString, graph.KindURL:
		putUvarint(buf, e.index[v.Str()])
	case graph.KindFile:
		buf.WriteByte(byte(v.FileType()))
		putUvarint(buf, e.index[v.Str()])
	case graph.KindInt:
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutVarint(tmp[:], v.Int())
		buf.Write(tmp[:n])
	case graph.KindFloat:
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.Float()))
		buf.Write(tmp[:])
	case graph.KindBool:
		if v.Bool() {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	}
}

// DecodeBinary deserializes a graph encoded by EncodeBinary or
// EncodeBinaryFrozen, dispatching on the magic.
func DecodeBinary(data []byte) (*graph.Graph, error) {
	if len(data) >= len(binaryMagicV2) && string(data[:len(binaryMagicV2)]) == binaryMagicV2 {
		f, err := graph.DecodeFrozen(data[len(binaryMagicV2):])
		if err != nil {
			return nil, err
		}
		return f.Thaw(), nil
	}
	d := &binDecoder{data: data}
	if len(data) < len(binaryMagic) || string(data[:len(binaryMagic)]) != binaryMagic {
		return nil, fmt.Errorf("repo: binary: bad magic")
	}
	d.pos = len(binaryMagic)
	nStrings, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Every table entry consumes at least one byte of input, so a count
	// beyond the remaining bytes is corrupt; checking before allocating
	// keeps an adversarial count from pre-sizing an enormous slice.
	if nStrings > uint64(len(d.data)-d.pos) {
		return nil, fmt.Errorf("repo: binary: string count %d exceeds input", nStrings)
	}
	strings := make([]string, 0, nStrings)
	for i := uint64(0); i < nStrings; i++ {
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if d.pos+int(n) > len(d.data) {
			return nil, fmt.Errorf("repo: binary: truncated string table")
		}
		strings = append(strings, string(d.data[d.pos:d.pos+int(n)]))
		d.pos += int(n)
	}
	ref := func() (string, error) {
		i, err := d.uvarint()
		if err != nil {
			return "", err
		}
		if i >= uint64(len(strings)) {
			return "", fmt.Errorf("repo: binary: string ref %d out of range", i)
		}
		return strings[i], nil
	}
	g := graph.New()
	nNodes, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nNodes; i++ {
		s, err := ref()
		if err != nil {
			return nil, err
		}
		g.AddNode(graph.OID(s))
	}
	nEdges, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nEdges; i++ {
		from, err := ref()
		if err != nil {
			return nil, err
		}
		label, err := ref()
		if err != nil {
			return nil, err
		}
		v, err := d.readValue(strings)
		if err != nil {
			return nil, err
		}
		g.AddEdge(graph.OID(from), label, v)
	}
	nColls, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nColls; i++ {
		name, err := ref()
		if err != nil {
			return nil, err
		}
		g.DeclareCollection(name)
		nMembers, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nMembers; j++ {
			m, err := ref()
			if err != nil {
				return nil, err
			}
			g.AddToCollection(name, graph.OID(m))
		}
	}
	return g, nil
}

type binDecoder struct {
	data []byte
	pos  int
}

func (d *binDecoder) uvarint() (uint64, error) {
	x, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("repo: binary: truncated varint at %d", d.pos)
	}
	d.pos += n
	return x, nil
}

func (d *binDecoder) varint() (int64, error) {
	x, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("repo: binary: truncated varint at %d", d.pos)
	}
	d.pos += n
	return x, nil
}

func (d *binDecoder) readValue(strings []string) (graph.Value, error) {
	if d.pos >= len(d.data) {
		return graph.Null, fmt.Errorf("repo: binary: truncated value")
	}
	kind := graph.Kind(d.data[d.pos])
	d.pos++
	strRef := func() (string, error) {
		i, err := d.uvarint()
		if err != nil {
			return "", err
		}
		if i >= uint64(len(strings)) {
			return "", fmt.Errorf("repo: binary: string ref %d out of range", i)
		}
		return strings[i], nil
	}
	switch kind {
	case graph.KindNode:
		s, err := strRef()
		if err != nil {
			return graph.Null, err
		}
		return graph.NewNode(graph.OID(s)), nil
	case graph.KindString:
		s, err := strRef()
		if err != nil {
			return graph.Null, err
		}
		return graph.NewString(s), nil
	case graph.KindURL:
		s, err := strRef()
		if err != nil {
			return graph.Null, err
		}
		return graph.NewURL(s), nil
	case graph.KindFile:
		if d.pos >= len(d.data) {
			return graph.Null, fmt.Errorf("repo: binary: truncated file type")
		}
		ft := graph.FileType(d.data[d.pos])
		d.pos++
		s, err := strRef()
		if err != nil {
			return graph.Null, err
		}
		return graph.NewFile(ft, s), nil
	case graph.KindInt:
		i, err := d.varint()
		if err != nil {
			return graph.Null, err
		}
		return graph.NewInt(i), nil
	case graph.KindFloat:
		if d.pos+8 > len(d.data) {
			return graph.Null, fmt.Errorf("repo: binary: truncated float")
		}
		bits := binary.LittleEndian.Uint64(d.data[d.pos:])
		d.pos += 8
		return graph.NewFloat(math.Float64frombits(bits)), nil
	case graph.KindBool:
		if d.pos >= len(d.data) {
			return graph.Null, fmt.Errorf("repo: binary: truncated bool")
		}
		b := d.data[d.pos] != 0
		d.pos++
		return graph.NewBool(b), nil
	}
	return graph.Null, fmt.Errorf("repo: binary: unknown value kind %d", kind)
}
