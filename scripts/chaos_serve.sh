#!/bin/sh
# chaos-serve: run the gray-failure serving drill — a 2x2 fleet served
# over HTTP through the deterministic fault-injection proxy, with one
# replica 200ms slow and another flapping, driven by the open-loop load
# generator with every 200 body byte-checked against the reference
# evaluator. The drill asserts zero mismatches, zero non-503 errors, a
# bounded p99, and that hedges/breakers/probes visibly engaged.
#
# The plain run writes its report (baseline + gray reports, fleet
# metrics, final health grid) to $CHAOS_SERVE_OUT, default
# chaos_serve_report.json; the second run repeats the drill under the
# race detector.
set -eu

out=${CHAOS_SERVE_OUT:-chaos_serve_report.json}
# go test runs with the package directory as its working directory, so a
# relative report path must be anchored here first.
case "$out" in
/*) ;;
*) out="$(pwd)/$out" ;;
esac

CHAOS_SERVE_OUT="$out" go test -count=1 -run '^TestGrayFailureDrill$' -v ./internal/fleet
CHAOS_SERVE_OUT="" go test -count=1 -race -run '^TestGrayFailureDrill$' ./internal/fleet

echo "chaos-serve: OK (report at $out)"
