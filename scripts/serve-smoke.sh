#!/bin/sh
# serve-smoke: build strudel-serve, serve a tiny site, probe it, and
# assert a clean graceful shutdown on SIGTERM. This is the end-to-end
# check that the real binary — flags, listener, reload loop, signal
# handling — works, not just the packages behind it.
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/strudel-serve" ./cmd/strudel-serve

cat > "$workdir/site.ddl" <<'EOF'
collection Pubs;
node p1 in Pubs { title "Catching the Boat"; year 1998; }
node p2 in Pubs { title "Strudel"; year 1997; }
EOF

cat > "$workdir/site.struql" <<'EOF'
create Root()
link Root() -> "title" -> "Smoke Site"
where Pubs(x)
create Page(x)
link Root() -> "pub" -> Page(x)
{ where x -> "title" -> t link Page(x) -> "title" -> t }
EOF

addr="127.0.0.1:18473"
debugaddr="127.0.0.1:18474"
"$workdir/strudel-serve" \
    -data "$workdir/site.ddl" -query "$workdir/site.struql" \
    -addr "$addr" -debug-addr "$debugaddr" \
    -shards 2 -replicas 2 -stale-for 0 \
    -reload-interval 200ms -shutdown-timeout 5s \
    > "$workdir/serve.log" 2>&1 &
pid=$!

# Wait for the server to come up.
up=""
for _ in $(seq 1 50); do
    if curl -fsS "http://$addr/healthz" > "$workdir/healthz.json" 2>/dev/null; then
        up=1
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: server exited early" >&2
        cat "$workdir/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$up" ]; then
    echo "serve-smoke: server never came up" >&2
    cat "$workdir/serve.log" >&2
    exit 1
fi

grep -q '"status":"ok"' "$workdir/healthz.json" || {
    echo "serve-smoke: /healthz not ok:" >&2
    cat "$workdir/healthz.json" >&2
    exit 1
}

curl -fsS "http://$addr/" | grep -q "Smoke Site" || {
    echo "serve-smoke: / did not serve the root page" >&2
    exit 1
}

# Conditional GETs: the edge tags every page with a generation-scoped
# ETag; a matching If-None-Match must earn a bodyless 304.
curl -fsS -D "$workdir/h1.txt" -o /dev/null "http://$addr/"
etag=$(tr -d '\r' < "$workdir/h1.txt" | awk 'tolower($1)=="etag:"{print $2}')
if [ -z "$etag" ]; then
    echo "serve-smoke: / served no ETag" >&2
    cat "$workdir/h1.txt" >&2
    exit 1
fi
code=$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $etag" "http://$addr/")
if [ "$code" != "304" ]; then
    echo "serve-smoke: conditional GET with matching ETag got HTTP $code, want 304" >&2
    exit 1
fi

# A hot reload bumps the generation, which must invalidate every held
# validator: edit the watched data file, then poll until the same
# conditional GET turns back into a full 200 with a fresh ETag.
cat >> "$workdir/site.ddl" <<'EOF'
node p3 in Pubs { title "Reloaded Entry"; year 1999; }
EOF
reloaded=""
for _ in $(seq 1 50); do
    code=$(curl -s -D "$workdir/h2.txt" -o "$workdir/after.html" -w '%{http_code}' \
        -H "If-None-Match: $etag" "http://$addr/")
    if [ "$code" = "200" ]; then
        reloaded=1
        break
    fi
    sleep 0.2
done
if [ -z "$reloaded" ]; then
    echo "serve-smoke: conditional GET never turned 200 after the reload" >&2
    cat "$workdir/serve.log" >&2
    exit 1
fi
etag2=$(tr -d '\r' < "$workdir/h2.txt" | awk 'tolower($1)=="etag:"{print $2}')
if [ -z "$etag2" ] || [ "$etag2" = "$etag" ]; then
    echo "serve-smoke: reload did not mint a new ETag (old=$etag new=$etag2)" >&2
    exit 1
fi
code=$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $etag2" "http://$addr/")
if [ "$code" != "304" ]; then
    echo "serve-smoke: conditional GET with post-reload ETag got HTTP $code, want 304" >&2
    exit 1
fi

# Debug endpoints live on the debug listener ONLY: the production
# listener must 404 them, the -debug-addr listener must serve them.
for path in /debug/vars /debug/pprof/; do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr$path")
    if [ "$code" != "404" ]; then
        echo "serve-smoke: production listener served $path (HTTP $code), want 404" >&2
        exit 1
    fi
done
curl -fsS "http://$debugaddr/debug/vars" > "$workdir/vars.json" || {
    echo "serve-smoke: debug listener did not serve /debug/vars" >&2
    cat "$workdir/serve.log" >&2
    exit 1
}
grep -q '"strudel"' "$workdir/vars.json" || {
    echo "serve-smoke: /debug/vars missing strudel metrics:" >&2
    cat "$workdir/vars.json" >&2
    exit 1
}
# The incremental-maintenance group must be exported alongside "serve":
# delta counters, bailout reasons, and the patch-latency histogram.
for key in '"ivm"' '"deltas_applied"' '"bailout_delta_too_large"' '"dirty_pages"' '"apply_nanos"'; do
    grep -q "$key" "$workdir/vars.json" || {
        echo "serve-smoke: /debug/vars missing ivm metric $key:" >&2
        cat "$workdir/vars.json" >&2
        exit 1
    }
done
# The sharded serving tier exports its own metric group: edge cache
# counters and the fleet generation (bumped by the reload above).
for key in '"fleet"' '"edge_requests"' '"not_modified"' '"generation"' '"swaps"'; do
    grep -q "$key" "$workdir/vars.json" || {
        echo "serve-smoke: /debug/vars missing fleet metric $key:" >&2
        cat "$workdir/vars.json" >&2
        exit 1
    }
done
# The live health grid: one state entry per replica of the 2x2 fleet.
for key in '"fleet_health"' '"shard0_replica0"' '"shard1_replica1"'; do
    grep -q "$key" "$workdir/vars.json" || {
        echo "serve-smoke: /debug/vars missing health-grid key $key:" >&2
        cat "$workdir/vars.json" >&2
        exit 1
    }
done
curl -fsS "http://$debugaddr/debug/pprof/" | grep -qi "profile" || {
    echo "serve-smoke: debug listener did not serve pprof index" >&2
    exit 1
}

# The query API rides the production listener: a StruQL POST must
# stream NDJSON rows over the same fleet the pages come from, and
# schema introspection must answer.
curl -fsS -d '{"query":"where Pubs(x), x -> \"title\" -> t"}' \
    "http://$addr/query" > "$workdir/query.ndjson" || {
    echo "serve-smoke: POST /query failed" >&2
    cat "$workdir/serve.log" >&2
    exit 1
}
for key in '"kind":"header"' '"kind":"row"' '"kind":"end"' '"done":true'; do
    grep -q "$key" "$workdir/query.ndjson" || {
        echo "serve-smoke: /query stream missing $key:" >&2
        cat "$workdir/query.ndjson" >&2
        exit 1
    }
done
grep -q "Reloaded Entry" "$workdir/query.ndjson" || {
    echo "serve-smoke: /query does not see the hot-reloaded data:" >&2
    cat "$workdir/query.ndjson" >&2
    exit 1
}
curl -fsS "http://$addr/schema/labels" | grep -q '"title"' || {
    echo "serve-smoke: /schema/labels did not list the title label" >&2
    exit 1
}
# And its metrics group lands on the debug listener with the rest.
curl -fsS "http://$debugaddr/debug/vars" > "$workdir/vars2.json"
for key in '"queryapi"' '"rows_streamed"' '"pages_served"' '"schema_requests"'; do
    grep -q "$key" "$workdir/vars2.json" || {
        echo "serve-smoke: /debug/vars missing queryapi metric $key:" >&2
        cat "$workdir/vars2.json" >&2
        exit 1
    }
done

# Graceful drain: SIGTERM must produce a clean exit 0.
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "serve-smoke: exit code $rc after SIGTERM, want 0" >&2
    cat "$workdir/serve.log" >&2
    exit 1
fi
grep -q "graceful shutdown complete" "$workdir/serve.log" || {
    echo "serve-smoke: no graceful-shutdown marker in log:" >&2
    cat "$workdir/serve.log" >&2
    exit 1
}

echo "serve-smoke: OK"
