#!/bin/sh
# benchdiff.sh — compare two BENCH_*.json snapshots (as written by
# bench.sh) and print per-benchmark deltas for ns/op, B/op, and
# allocs/op. Benchmarks present in only one file are listed separately.
#
# Usage: sh scripts/benchdiff.sh OLD.json NEW.json [--gate PATTERN MAXPCT]
#
#   --gate PATTERN MAXPCT   exit 1 if any benchmark matching PATTERN
#                           (awk regex on the name) regresses more than
#                           MAXPCT percent in allocs/op. Used by CI to
#                           keep the E6 allocation wins from eroding.
set -eu

if [ $# -lt 2 ]; then
    echo "usage: $0 OLD.json NEW.json [--gate PATTERN MAXPCT]" >&2
    exit 2
fi
old=$1
new=$2
gate_pat=""
gate_pct=0
if [ "${3:-}" = "--gate" ]; then
    gate_pat=${4:?--gate needs PATTERN}
    gate_pct=${5:?--gate needs MAXPCT}
fi

# Each input line of interest looks like:
#   "BenchmarkName": {"ns_per_op": N, "bytes_per_op": N, "allocs_per_op": N}
# so a line-oriented awk parse is enough; no JSON library needed.
awk -v gate_pat="$gate_pat" -v gate_pct="$gate_pct" '
function parse(line, out,    name, rest) {
    if (line !~ /ns_per_op/) return ""
    name = line
    sub(/^[[:space:]]*"/, "", name)
    sub(/".*$/, "", name)
    rest = line
    out["ns"] = field(rest, "ns_per_op")
    out["bytes"] = field(rest, "bytes_per_op")
    out["allocs"] = field(rest, "allocs_per_op")
    return name
}
function field(s, key,    r) {
    r = s
    if (!sub(".*\"" key "\": *", "", r)) return "null"
    sub(/[,}].*/, "", r)
    return r
}
function delta(o, n,    p) {
    if (o == "null" || n == "null" || o + 0 == 0) return "      n/a"
    p = (n - o) * 100.0 / o
    return sprintf("%+8.1f%%", p)
}
FNR == 1 { file++ }
{
    split("", vals)
    name = parse($0, vals)
    if (name == "") next
    if (file == 1) {
        ons[name] = vals["ns"]; obytes[name] = vals["bytes"]; oallocs[name] = vals["allocs"]
        order[++n_old] = name
    } else {
        nns[name] = vals["ns"]; nbytes[name] = vals["bytes"]; nallocs[name] = vals["allocs"]
        if (!(name in ons)) added[++n_added] = name
    }
}
END {
    printf "%-72s %10s %10s %10s\n", "benchmark", "ns/op", "B/op", "allocs/op"
    bad = 0
    for (i = 1; i <= n_old; i++) {
        name = order[i]
        if (!(name in nns)) { removed[++n_removed] = name; continue }
        printf "%-72s %10s %10s %10s\n", name, \
            delta(ons[name], nns[name]), \
            delta(obytes[name], nbytes[name]), \
            delta(oallocs[name], nallocs[name])
        if (gate_pat != "" && name ~ gate_pat && \
            oallocs[name] != "null" && nallocs[name] != "null" && oallocs[name] + 0 > 0) {
            p = (nallocs[name] - oallocs[name]) * 100.0 / oallocs[name]
            if (p > gate_pct + 0) {
                gatefail[++bad] = sprintf("%s: allocs/op %+.1f%% (max %+.1f%%)", name, p, gate_pct)
            }
        }
    }
    for (i = 1; i <= n_removed; i++) printf "%-72s %s\n", removed[i], "only in old"
    for (i = 1; i <= n_added; i++) printf "%-72s %s\n", added[i], "only in new"
    if (bad) {
        printf "\nallocation regression gate failed:\n"
        for (i = 1; i <= bad; i++) print "  " gatefail[i]
        exit 1
    }
}
' "$old" "$new"
