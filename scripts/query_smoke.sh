#!/bin/sh
# query-smoke: boot the real strudel-serve binary and drive the query
# API end to end — schema introspection, a query, cursor pagination,
# EXPLAIN, a guard trip, and the queryapi metrics group on /debug/vars.
# This is the network-level proof that the data service the site is a
# view over is actually reachable, typed, and observable.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null && wait "$pid" 2>/dev/null
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/strudel-serve" ./cmd/strudel-serve

cat > "$workdir/site.ddl" <<'EOF'
collection Pubs;
node p1 in Pubs { title "Catching the Boat"; year 1998; tag "web"; }
node p2 in Pubs { title "Strudel"; year 1997; tag "web"; }
node p3 in Pubs { title "StruQL"; year 1997; tag "query"; }
node p4 in Pubs { title "Dataguides"; year 1997; tag "schema"; }
EOF

cat > "$workdir/site.struql" <<'EOF'
create Root()
link Root() -> "title" -> "Query Smoke Site"
where Pubs(x)
create Page(x)
link Root() -> "pub" -> Page(x)
{ where x -> "title" -> t link Page(x) -> "title" -> t }
EOF

addr="127.0.0.1:18673"
debugaddr="127.0.0.1:18674"
"$workdir/strudel-serve" \
    -data "$workdir/site.ddl" -query "$workdir/site.struql" \
    -addr "$addr" -debug-addr "$debugaddr" \
    -shards 2 -replicas 2 -reload-interval 0 \
    > "$workdir/serve.log" 2>&1 &
pid=$!

up=""
for _ in $(seq 1 50); do
    if curl -fsS "http://$addr/healthz" > /dev/null 2>&1; then
        up=1
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "query-smoke: server exited early" >&2
        cat "$workdir/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
[ -n "$up" ] || { echo "query-smoke: server never came up" >&2; cat "$workdir/serve.log" >&2; exit 1; }

fail() {
    echo "query-smoke: $1" >&2
    shift
    for f in "$@"; do cat "$f" >&2; done
    exit 1
}

# 1. Introspection: the labels the DDL created must be visible, with a
#    generation stamp and an ETag that earns a 304 on refetch.
curl -fsS "http://$addr/schema/labels" > "$workdir/labels.json" \
    || fail "/schema/labels failed" "$workdir/serve.log"
for key in '"generation"' '"title"' '"year"' '"tag"'; do
    grep -q "$key" "$workdir/labels.json" || fail "/schema/labels missing $key" "$workdir/labels.json"
done
etag=$(curl -fsS -D - -o /dev/null "http://$addr/schema/labels" | tr -d '\r' | awk 'tolower($1)=="etag:"{print $2}')
[ -n "$etag" ] || fail "/schema/labels served no ETag"
code=$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $etag" "http://$addr/schema/labels")
[ "$code" = "304" ] || fail "conditional /schema/labels got $code, want 304"

curl -fsS "http://$addr/schema/dataguide?depth=3" > "$workdir/guide.json" \
    || fail "/schema/dataguide failed" "$workdir/serve.log"
grep -q '"paths"' "$workdir/guide.json" || fail "dataguide has no paths" "$workdir/guide.json"

# 2. Query + pagination: 4 pubs with page_size 3 must take exactly two
#    pages, stitched by an opaque cursor, with header/end framing.
query='{"query":"where Pubs(x), x -> \"title\" -> t","page_size":3}'
curl -fsS -d "$query" "http://$addr/query" > "$workdir/page1.ndjson" \
    || fail "POST /query failed" "$workdir/serve.log"
grep -q '"kind":"header"' "$workdir/page1.ndjson" || fail "no header line" "$workdir/page1.ndjson"
grep -q '"kind":"row"' "$workdir/page1.ndjson" || fail "no row lines" "$workdir/page1.ndjson"
grep -q '"done":false' "$workdir/page1.ndjson" || fail "first page claims done" "$workdir/page1.ndjson"
cursor=$(sed -n 's/.*"next_cursor":"\([^"]*\)".*/\1/p' "$workdir/page1.ndjson")
[ -n "$cursor" ] || fail "first page carried no cursor" "$workdir/page1.ndjson"

curl -fsS -d "{\"query\":\"where Pubs(x), x -> \\\"title\\\" -> t\",\"page_size\":3,\"cursor\":\"$cursor\"}" \
    "http://$addr/query" > "$workdir/page2.ndjson" || fail "cursor resume failed" "$workdir/serve.log"
grep -q '"done":true' "$workdir/page2.ndjson" || fail "second page not done" "$workdir/page2.ndjson"
rows=$(grep -c '"kind":"row"' "$workdir/page1.ndjson" "$workdir/page2.ndjson" | awk -F: '{n+=$2} END {print n}')
[ "$rows" = "4" ] || fail "paginated walk returned $rows rows, want 4" "$workdir/page1.ndjson" "$workdir/page2.ndjson"

# 3. EXPLAIN surfaces the planner.
curl -fsS -d '{"query":"where Pubs(x), x -> \"year\" -> y, y > 1997"}' \
    "http://$addr/query/explain" > "$workdir/explain.json" || fail "explain failed" "$workdir/serve.log"
grep -q '"explain"' "$workdir/explain.json" || fail "no explain payload" "$workdir/explain.json"
grep -q 'block' "$workdir/explain.json" || fail "explain text missing plan" "$workdir/explain.json"

# 4. Guard trip: max_rows 1 over a 4-row result is a typed 422.
code=$(curl -s -o "$workdir/guard.json" -w '%{http_code}' \
    -d '{"query":"where Pubs(x), x -> \"title\" -> t","max_rows":1}' "http://$addr/query")
[ "$code" = "422" ] || fail "guard trip got $code, want 422" "$workdir/guard.json"
grep -q '"code":"max_rows"' "$workdir/guard.json" || fail "guard error untyped" "$workdir/guard.json"

# 5. Parse garbage is a typed 400.
code=$(curl -s -o "$workdir/parse.json" -w '%{http_code}' \
    -d '{"query":"where -> ->"}' "http://$addr/query")
[ "$code" = "400" ] || fail "parse garbage got $code, want 400" "$workdir/parse.json"
grep -q '"code":"parse_error"' "$workdir/parse.json" || fail "parse error untyped" "$workdir/parse.json"

# 6. The queryapi metrics group reflects all of the above on the debug
#    listener's /debug/vars.
curl -fsS "http://$debugaddr/debug/vars" > "$workdir/vars.json" \
    || fail "/debug/vars failed" "$workdir/serve.log"
for key in '"queryapi"' '"pages_served"' '"cursor_resumes"' '"guard_rows_trips"' '"parse_errors"' '"schema_requests"' '"explains"'; do
    grep -q "$key" "$workdir/vars.json" || fail "/debug/vars missing queryapi key $key" "$workdir/vars.json"
done
# Exact increments for the counters this script drove deterministically.
python3 - "$workdir/vars.json" <<'EOF' || fail "queryapi counters off" "$workdir/vars.json"
import json, sys
q = json.load(open(sys.argv[1]))["strudel"]["queryapi"]
assert q["pages_served"] == 2, q
assert q["cursor_resumes"] == 1, q
assert q["guard_rows_trips"] == 1, q
assert q["parse_errors"] == 1, q
assert q["explains"] == 1, q
assert q["not_modified"] >= 1, q
EOF

kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" -eq 0 ] || fail "exit code $rc after SIGTERM" "$workdir/serve.log"

echo "query-smoke: OK"
