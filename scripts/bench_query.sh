#!/bin/sh
# bench_query.sh — measure the query API against page serving on the
# SAME fleet (E17): build strudel-serve and strudel-load, serve the
# synthetic publication site, then drive one open-loop window of page
# GETs and one of /query POSTs at the same arrival rate, and aggregate
# both reports into BENCH_query.json. Pages hit the render cache;
# queries hit the per-generation result cache — the comparison shows
# what answering StruQL at the edge costs relative to serving the
# pages it generates.
#
# Usage: sh scripts/bench_query.sh
#   SHARDS=2               fleet size
#   REPLICAS=2             replicas per shard
#   RATE=800               arrival rate (req/s, open loop)
#   DURATION=3s            measured window per mode
#   WARMUP=1s              discarded warmup window
#   PUBS=150               synthetic site size (publication count)
#   PAGE_SIZE=100          page_size sent with each query
#   OUT=BENCH_query.json   output path
set -eu
cd "$(dirname "$0")/.."

SHARDS=${SHARDS:-2}
REPLICAS=${REPLICAS:-2}
RATE=${RATE:-800}
DURATION=${DURATION:-3s}
WARMUP=${WARMUP:-1s}
PUBS=${PUBS:-150}
PAGE_SIZE=${PAGE_SIZE:-100}
OUT=${OUT:-BENCH_query.json}

workdir=$(mktemp -d)
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null && wait "$serve_pid" 2>/dev/null
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/strudel-serve" ./cmd/strudel-serve
go build -o "$workdir/strudel-load" ./cmd/strudel-load

# Same synthetic site bench_serve.sh uses, so the two benchmarks are
# comparable: PUBS publications over shared years and tags.
{
    echo "collection Pubs;"
    i=0
    while [ "$i" -lt "$PUBS" ]; do
        year=$((1990 + i % 9))
        tag=$((i % 5))
        printf 'node p%03d in Pubs { title "Synthetic Publication %03d"; year %d; tag "area%d"; }\n' \
            "$i" "$i" "$year" "$tag"
        i=$((i + 1))
    done
} > "$workdir/site.ddl"

cat > "$workdir/site.struql" <<'EOF'
create Root()
link Root() -> "title" -> "Bench Site"
where Pubs(x)
create Pub(x)
link Root() -> "pub" -> Pub(x), Pub(x) -> "self" -> x
{ where x -> "title" -> t link Pub(x) -> "title" -> t }
{ where x -> "year" -> y
  create Year(y)
  link Year(y) -> "year" -> y, Year(y) -> "has" -> Pub(x), Root() -> "years" -> Year(y) }
{ where x -> "tag" -> g
  create Tag(g)
  link Tag(g) -> "tag" -> g, Tag(g) -> "member" -> Pub(x), Root() -> "tags" -> Tag(g) }
EOF

# The query mix speaks the DATA graph's vocabulary (the warehouse the
# site is a view over, not the rendered page space): scans, value
# filters, comparisons, and a conjunctive join — the shapes E17 cares
# about, from cheap to expensive.
cat > "$workdir/queries.txt" <<'EOF'
# E17 query mix (one where clause per line)
where Pubs(x)
where Pubs(x), x -> "title" -> t
where Pubs(x), x -> "year" -> y
where Pubs(x), x -> "year" -> y, y > 1994
where Pubs(x), x -> "tag" -> g, g = "area3"
where Pubs(x), x -> "year" -> y, x -> "tag" -> g
EOF

addr="127.0.0.1:18673"

"$workdir/strudel-serve" \
    -data "$workdir/site.ddl" -query "$workdir/site.struql" \
    -addr "$addr" -shards "$SHARDS" -replicas "$REPLICAS" \
    -reload-interval 0 \
    > "$workdir/serve.log" 2>&1 &
serve_pid=$!

up=""
for _ in $(seq 1 50); do
    if curl -fsS "http://$addr/healthz" > /dev/null 2>&1; then
        up=1
        break
    fi
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "bench_query: server exited early" >&2
        cat "$workdir/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$up" ]; then
    echo "bench_query: server never came up" >&2
    cat "$workdir/serve.log" >&2
    exit 1
fi

echo "bench_query: pages  shards=$SHARDS replicas=$REPLICAS rate=$RATE window=$DURATION" >&2
"$workdir/strudel-load" -url "http://$addr" \
    -rate "$RATE" -duration "$DURATION" -warmup "$WARMUP" \
    -out "$workdir/report_pages.json"

echo "bench_query: queries shards=$SHARDS replicas=$REPLICAS rate=$RATE window=$DURATION" >&2
"$workdir/strudel-load" -url "http://$addr" \
    -rate "$RATE" -duration "$DURATION" -warmup "$WARMUP" \
    -query-file "$workdir/queries.txt" -query-page-size "$PAGE_SIZE" \
    -out "$workdir/report_queries.json"

kill -TERM "$serve_pid"
wait "$serve_pid" || {
    echo "bench_query: server did not shut down cleanly" >&2
    cat "$workdir/serve.log" >&2
    exit 1
}
serve_pid=""

# Aggregate: {"config": {...}, "pages": <report>, "queries": <report>}
{
    printf '{\n'
    printf '  "config": {"shards": %s, "replicas": %s, "rate": %s, "duration": "%s", "pubs": %s, "query_page_size": %s},\n' \
        "$SHARDS" "$REPLICAS" "$RATE" "$DURATION" "$PUBS" "$PAGE_SIZE"
    printf '  "pages": '
    tr -d '\n' < "$workdir/report_pages.json"
    printf ',\n  "queries": '
    tr -d '\n' < "$workdir/report_queries.json"
    printf '\n}\n'
} > "$OUT"

echo "wrote $OUT"
