#!/bin/sh
# bench.sh — run the repository benchmarks and write a machine-readable
# summary to BENCH_7.json (benchmark name → ns/op, B/op, allocs/op).
#
# Usage: sh scripts/bench.sh
#   BENCHTIME=1x   benchtime passed to go test (default 1x: one
#                  iteration per benchmark, enough for a CI snapshot)
#   OUT=BENCH_7.json   output path
set -eu
cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_7.json}
BENCHTIME=${BENCHTIME:-1x}

raw=$(go test -run='^$' -bench=. -benchmem -benchtime "$BENCHTIME" .)
printf '%s\n' "$raw"

printf '%s\n' "$raw" | awk '
BEGIN { printf "{\n"; n = 0 }
$1 ~ /^Benchmark/ {
    ns = ""; bytes = "null"; allocs = "null"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    name = $1
    gsub(/\\/, "\\\\", name)
    gsub(/"/, "\\\"", name)
    if (n++) printf ",\n"
    printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bytes, allocs
}
END { printf "\n}\n" }
' >"$OUT"

echo "wrote $OUT ($(grep -c 'ns_per_op' "$OUT") benchmarks)"
