#!/bin/sh
# bench_serve.sh — load-test the sharded serving tier end to end: build
# strudel-serve and strudel-load, generate a synthetic site, serve it at
# several shard counts, and aggregate the load reports (throughput, p50/
# p99/p99.9 latency) into one machine-readable BENCH_serve.json.
#
# Usage: sh scripts/bench_serve.sh
#   SHARD_COUNTS="1 2 4"   fleet sizes to measure
#   REPLICAS=2             replicas per shard
#   RATE=800               arrival rate (req/s, open loop)
#   DURATION=3s            measured window per shard count
#   WARMUP=1s              discarded warmup window
#   PUBS=150               synthetic site size (publication count)
#   OUT=BENCH_serve.json   output path
set -eu
cd "$(dirname "$0")/.."

SHARD_COUNTS=${SHARD_COUNTS:-"1 2 4"}
REPLICAS=${REPLICAS:-2}
RATE=${RATE:-800}
DURATION=${DURATION:-3s}
WARMUP=${WARMUP:-1s}
PUBS=${PUBS:-150}
OUT=${OUT:-BENCH_serve.json}

workdir=$(mktemp -d)
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null && wait "$serve_pid" 2>/dev/null
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/strudel-serve" ./cmd/strudel-serve
go build -o "$workdir/strudel-load" ./cmd/strudel-load

# Synthetic site: PUBS publications spread over shared years and tags,
# so the page space has both deep fan-out (index pages) and a long tail
# (per-publication pages) for the zipf mix to choose from.
{
    echo "collection Pubs;"
    i=0
    while [ "$i" -lt "$PUBS" ]; do
        year=$((1990 + i % 9))
        tag=$((i % 5))
        printf 'node p%03d in Pubs { title "Synthetic Publication %03d"; year %d; tag "area%d"; }\n' \
            "$i" "$i" "$year" "$tag"
        i=$((i + 1))
    done
} > "$workdir/site.ddl"

cat > "$workdir/site.struql" <<'EOF'
create Root()
link Root() -> "title" -> "Bench Site"
where Pubs(x)
create Pub(x)
link Root() -> "pub" -> Pub(x), Pub(x) -> "self" -> x
{ where x -> "title" -> t link Pub(x) -> "title" -> t }
{ where x -> "year" -> y
  create Year(y)
  link Year(y) -> "year" -> y, Year(y) -> "has" -> Pub(x), Root() -> "years" -> Year(y) }
{ where x -> "tag" -> g
  create Tag(g)
  link Tag(g) -> "tag" -> g, Tag(g) -> "member" -> Pub(x), Root() -> "tags" -> Tag(g) }
EOF

addr="127.0.0.1:18573"

for shards in $SHARD_COUNTS; do
    echo "bench_serve: measuring shards=$shards replicas=$REPLICAS rate=$RATE window=$DURATION" >&2
    "$workdir/strudel-serve" \
        -data "$workdir/site.ddl" -query "$workdir/site.struql" \
        -addr "$addr" -shards "$shards" -replicas "$REPLICAS" \
        -reload-interval 0 \
        > "$workdir/serve_$shards.log" 2>&1 &
    serve_pid=$!

    up=""
    for _ in $(seq 1 50); do
        if curl -fsS "http://$addr/healthz" > /dev/null 2>&1; then
            up=1
            break
        fi
        if ! kill -0 "$serve_pid" 2>/dev/null; then
            echo "bench_serve: server exited early at shards=$shards" >&2
            cat "$workdir/serve_$shards.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$up" ]; then
        echo "bench_serve: server never came up at shards=$shards" >&2
        cat "$workdir/serve_$shards.log" >&2
        exit 1
    fi

    "$workdir/strudel-load" -url "http://$addr" \
        -rate "$RATE" -duration "$DURATION" -warmup "$WARMUP" \
        -out "$workdir/report_$shards.json"

    kill -TERM "$serve_pid"
    wait "$serve_pid" || {
        echo "bench_serve: server at shards=$shards did not shut down cleanly" >&2
        cat "$workdir/serve_$shards.log" >&2
        exit 1
    }
    serve_pid=""
done

# Aggregate: {"config": {...}, "shards_N": <per-run report>, ...}
{
    printf '{\n'
    printf '  "config": {"replicas": %s, "rate": %s, "duration": "%s", "pubs": %s},\n' \
        "$REPLICAS" "$RATE" "$DURATION" "$PUBS"
    first=1
    for shards in $SHARD_COUNTS; do
        [ "$first" = 1 ] || printf ',\n'
        first=0
        printf '  "shards_%s": ' "$shards"
        # Each report is a complete JSON object; embed it on one line.
        tr -d '\n' < "$workdir/report_$shards.json"
    done
    printf '\n}\n'
} > "$OUT"

echo "wrote $OUT ($(echo "$SHARD_COUNTS" | wc -w | tr -d ' ') shard counts)"
