// Chaos tests for the fail-soft batch pipeline: filesystem faults
// injected into atomic publication must never leave a partially
// published site, and lenient builds over corrupted sources must produce
// deterministic, position-tagged diagnostics at every parallelism.
package strudel_test

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"strudel/internal/core"
	"strudel/internal/diag"
	"strudel/internal/faultfs"
	"strudel/internal/fsx"
	"strudel/internal/graph"
	"strudel/internal/htmlgen"
	"strudel/internal/mediator"
	"strudel/internal/sites"
	"strudel/internal/wrapper/bibtex"
	"strudel/internal/wrapper/csvrel"
	"strudel/internal/wrapper/jsonwrap"
)

// chaosSpecs builds every example site at a small scale.
func chaosSpecs() map[string]func() *core.Spec {
	return map[string]func() *core.Spec{
		"homepage":  func() *core.Spec { return sites.Homepage(6) },
		"cnn":       func() *core.Spec { return sites.CNN(10) },
		"orgsite":   func() *core.Spec { return sites.OrgSite(10, 2, 3, 4) },
		"bilingual": func() *core.Spec { return sites.Bilingual(4) },
	}
}

func chaosParallelisms() []int {
	pars := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		pars = append(pars, n)
	}
	return pars
}

// readTree reads every file under dir keyed by slash-separated relative
// path.
func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	tree := map[string]string{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		tree[filepath.ToSlash(rel)] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func sameTree(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// firstVersion returns the build's first version in sorted name order.
func firstVersion(res *core.BuildResult) *core.VersionResult {
	names := make([]string, 0, len(res.Versions))
	for n := range res.Versions {
		names = append(names, n)
	}
	sort.Strings(names)
	return res.Versions[names[0]]
}

// TestChaosPublishAtomicity injects a fault into every write, rename,
// and directory sync a publication performs — across all example sites
// and parallelism 1/2/NumCPU — and asserts the published directory is
// always either the untouched old site or the complete new site,
// byte-identical to a clean build.
func TestChaosPublishAtomicity(t *testing.T) {
	for name, mk := range chaosSpecs() {
		for _, par := range chaosParallelisms() {
			res, err := core.BuildWith(mk(), &core.Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%s/j%d: %v", name, par, err)
			}
			out := firstVersion(res).Output

			base := t.TempDir()
			golden := filepath.Join(base, "golden")
			if err := out.Publish(fsx.OS, golden, nil); err != nil {
				t.Fatalf("%s/j%d: clean publish: %v", name, par, err)
			}
			goldenTree := readTree(t, golden)
			oldTree := map[string]string{"index.html": "OLD GENERATION"}

			// Fault points: every staged page write, the two swap
			// renames plus rollback, and the final directory sync.
			nFaults := out.PageCount() + 3
			for _, kind := range []string{"write", "shortwrite", "rename", "sync"} {
				for fault := 1; fault <= nFaults; fault++ {
					dir := filepath.Join(base, "site")
					if err := os.RemoveAll(dir); err != nil {
						t.Fatal(err)
					}
					if err := os.RemoveAll(dir + ".prev"); err != nil {
						t.Fatal(err)
					}
					if err := os.MkdirAll(dir, 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(filepath.Join(dir, "index.html"), []byte(oldTree["index.html"]), 0o644); err != nil {
						t.Fatal(err)
					}
					ffs := &faultfs.FS{Inner: fsx.OS}
					switch kind {
					case "write":
						ffs.FailWriteN = fault
					case "shortwrite":
						ffs.ShortWriteN = fault
					case "rename":
						ffs.FailRenameN = fault
					case "sync":
						ffs.FailSyncN = fault
					}
					err := out.Publish(ffs, dir, nil)
					got := readTree(t, dir)
					switch {
					case err == nil:
						if !sameTree(got, goldenTree) {
							t.Fatalf("%s/j%d %s/%d: successful publish differs from clean build", name, par, kind, fault)
						}
					case kind == "sync":
						// The final sync runs after the swap; failure
						// reports the durability gap but the new site is
						// in place.
						if !sameTree(got, goldenTree) && !sameTree(got, oldTree) {
							t.Fatalf("%s/j%d %s/%d: torn site after sync fault", name, par, kind, fault)
						}
					default:
						if !errors.Is(err, faultfs.ErrInjected) {
							t.Fatalf("%s/j%d %s/%d: unexpected error %v", name, par, kind, fault, err)
						}
						if !sameTree(got, oldTree) {
							t.Fatalf("%s/j%d %s/%d: failed publish left a partial site (%d files)", name, par, kind, fault, len(got))
						}
					}
				}
			}
		}
	}
}

// dirtySources returns one corrupted source per wrapper kind; each has
// clean records surviving around a malformed one.
func dirtySources() []mediator.Source {
	dirtyBib := "@article{ok1, title={Fine}, year={1998}}\n" +
		"@article{broken title={No comma after key}\n" +
		"@article{ok2, title={Also fine}, year={1997}}\n"
	dirtyCSV := "id,name\nr1,Good\nthis row is ragged\nr2,AlsoGood\n"
	dirtyJSON := []byte("[ {\"id\": \"j1\"}, {\"id\": }, {\"id\": \"j2\"} ]")
	return []mediator.Source{
		{Name: "chaos-bib",
			Load: func() (*graph.Graph, error) {
				return bibtex.Load(dirtyBib, bibtex.Options{Collection: "ChaosBib"})
			},
			LoadLenient: func() (*graph.Graph, *diag.Report, error) {
				g, rep := bibtex.LoadLenient(dirtyBib, "chaos-bib", bibtex.Options{Collection: "ChaosBib"})
				return g, rep, nil
			}},
		{Name: "chaos-csv",
			Load: func() (*graph.Graph, error) {
				return csvrel.Load(dirtyCSV, csvrel.Options{Table: "ChaosRows", KeyColumn: "id"})
			},
			LoadLenient: func() (*graph.Graph, *diag.Report, error) {
				return csvrel.LoadLenient(dirtyCSV, "chaos-csv", csvrel.Options{Table: "ChaosRows", KeyColumn: "id"})
			}},
		{Name: "chaos-json",
			Load: func() (*graph.Graph, error) {
				return jsonwrap.Load("chaosdoc", dirtyJSON, jsonwrap.Options{Collection: "ChaosDocs"})
			},
			LoadLenient: func() (*graph.Graph, *diag.Report, error) {
				g, rep := jsonwrap.LoadLenient("chaosdoc", dirtyJSON, "chaos-json", jsonwrap.Options{Collection: "ChaosDocs"})
				return g, rep, nil
			}},
	}
}

func diagLines(reports []mediator.SourceReport) []string {
	var lines []string
	for _, sr := range reports {
		for _, d := range sr.Report.Diags {
			lines = append(lines, d.String())
		}
	}
	sort.Strings(lines)
	return lines
}

// TestChaosLenientDiagnosticsDeterministic seeds malformed records into
// every example site, builds leniently at several parallelisms, and
// asserts the diagnostics are identical position-tagged lines every time
// and the published site matches the unseeded build byte for byte (the
// seeded collections are unreferenced by the site queries).
func TestChaosLenientDiagnosticsDeterministic(t *testing.T) {
	for name, mk := range chaosSpecs() {
		var wantDiags []string
		var wantTree map[string]string
		for _, par := range chaosParallelisms() {
			spec := mk()
			spec.Sources = append(spec.Sources, dirtySources()...)
			res, err := core.BuildWith(spec, &core.Options{
				Parallelism: par, Lenient: true, Budget: diag.Unlimited})
			if err != nil {
				t.Fatalf("%s/j%d: %v", name, par, err)
			}
			lines := diagLines(res.SourceReports)
			if len(lines) == 0 {
				t.Fatalf("%s/j%d: seeded corruption produced no diagnostics", name, par)
			}
			for _, l := range lines {
				if l == "" {
					t.Fatalf("%s/j%d: empty diagnostic line", name, par)
				}
			}
			dir := filepath.Join(t.TempDir(), "site")
			if err := firstVersion(res).Output.Publish(fsx.OS, dir, nil); err != nil {
				t.Fatalf("%s/j%d: publish: %v", name, par, err)
			}
			tree := readTree(t, dir)
			if wantDiags == nil {
				wantDiags, wantTree = lines, tree
				continue
			}
			if len(lines) != len(wantDiags) {
				t.Fatalf("%s/j%d: diagnostic count varies with parallelism", name, par)
			}
			for i := range lines {
				if lines[i] != wantDiags[i] {
					t.Fatalf("%s/j%d: diagnostic %d differs: %q vs %q", name, par, i, lines[i], wantDiags[i])
				}
			}
			if !sameTree(tree, wantTree) {
				t.Fatalf("%s/j%d: published site varies with parallelism", name, par)
			}
		}

		// A zero budget over the same dirty sources is a typed failure.
		spec := mk()
		spec.Sources = append(spec.Sources, dirtySources()...)
		_, err := core.BuildWith(spec, &core.Options{Lenient: true})
		var be *diag.BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("%s: zero budget: err = %v, want *diag.BudgetError", name, err)
		}
	}
}

// TestChaosPageNameInjection: a hostile page name smuggled into an
// output must fail publication without touching anything outside the
// staging area.
func TestChaosPageNameInjection(t *testing.T) {
	base := t.TempDir()
	victim := filepath.Join(base, "victim.txt")
	if err := os.WriteFile(victim, []byte("untouched"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := &htmlgen.Output{Pages: map[string]string{
		"index.html":    "ok",
		"../victim.txt": "overwritten",
	}}
	dir := filepath.Join(base, "site")
	err := out.Publish(fsx.OS, dir, nil)
	var pe *htmlgen.PageNameError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *htmlgen.PageNameError", err)
	}
	data, rerr := os.ReadFile(victim)
	if rerr != nil || string(data) != "untouched" {
		t.Fatal("page-name escape reached outside the output directory")
	}
	if _, serr := os.Stat(dir); !os.IsNotExist(serr) {
		t.Error("failed publish left the site directory behind")
	}
}
