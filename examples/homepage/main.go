// Homepage: the paper's running example (Figs. 2–4, 6) and the mff site
// of §5.1 — a personal homepage generated from a BibTeX bibliography plus
// a Strudel data file, in internal and external versions that share one
// site graph.
//
//	go run ./examples/homepage [-pubs 25] [-out homepage-site]
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"strudel/internal/core"
	"strudel/internal/sites"
)

func main() {
	pubs := flag.Int("pubs", 25, "number of publications in the bibliography")
	out := flag.String("out", "homepage-site", "output directory")
	flag.Parse()

	spec := sites.Homepage(*pubs)
	res, err := core.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"internal", "external"} {
		vr := res.Versions[name]
		dir := filepath.Join(*out, name)
		if err := vr.Output.WriteDir(dir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s version: %s → %s\n", name, vr.Stats, dir)
		for _, c := range vr.Checks {
			fmt.Printf("  %s: %s\n", c.Verdict, c.Reason)
		}
	}
	in, ex := res.Versions["internal"], res.Versions["external"]
	fmt.Printf("\nThe two versions share the %d-line query; the external rendering\n", in.Stats.QueryLines)
	fmt.Printf("produced %d pages instead of %d because proprietary material is\n",
		ex.Stats.Pages, in.Stats.Pages)
	fmt.Println("filtered by templates alone, never re-querying the data (§5.1).")
}
