// Quickstart: the smallest end-to-end Strudel pipeline.
//
// It builds a data graph in code, defines the site structure with a
// three-block StruQL query, renders it through two templates, verifies a
// connectivity constraint, and writes the browsable site to ./quickstart-site.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"strudel/internal/constraints"
	"strudel/internal/graph"
	"strudel/internal/htmlgen"
	"strudel/internal/repo"
	"strudel/internal/schema"
	"strudel/internal/struql"
	"strudel/internal/template"
)

func main() {
	// 1. The data graph: three books with irregular attributes (one has
	// no year — the semistructured model needs no schema migration).
	data := graph.New()
	add := func(oid graph.OID, title string, year int) {
		data.AddToCollection("Books", oid)
		data.AddEdge(oid, "title", graph.NewString(title))
		if year > 0 {
			data.AddEdge(oid, "year", graph.NewInt(int64(year)))
		}
	}
	add("b1", "The Art of Computer Programming", 1968)
	add("b2", "A Relational Model of Data", 1970)
	add("b3", "Forthcoming Memoirs", 0)

	// 2. The site-definition query: a root page, one page per book, and
	// year pages grouping books — structure, declared, not programmed.
	q := struql.MustParse(`
create Home()
link Home() -> "title" -> "My Library"

where Books(b)
create BookPage(b)
link Home() -> "Book" -> BookPage(b)
{
  where b -> "title" -> t
  link BookPage(b) -> "title" -> t
}
{
  where b -> "year" -> y
  create YearPage(y)
  link YearPage(y) -> "Year" -> y,
       YearPage(y) -> "Book" -> BookPage(b),
       Home() -> "ByYear" -> YearPage(y)
}
`)

	// The site schema is derivable before any evaluation (Fig. 7 style).
	fmt.Println("--- site schema ---")
	fmt.Print(schema.Build(q).String())

	// 3. Evaluate against the fully indexed repository.
	result, err := struql.Eval(q, repo.NewIndexed(data), nil)
	if err != nil {
		log.Fatal(err)
	}
	site := result.Graph

	// 4. Check an integrity constraint on the materialized site graph.
	check := constraints.Connected{Root: "Home"}.CheckSite(site)
	fmt.Printf("--- constraint: %s → %s (%s)\n", constraints.Connected{Root: "Home"}, check.Verdict, check.Reason)

	// 5. Render through the HTML-template language and write the site.
	ts := template.NewSet()
	ts.MustAdd("Home", `<html><head><title><SFMT title></title></head><body>
<h1><SFMT title></h1>
<h2>All books</h2>
<SFMT Book UL ORDER=ascend KEY=title TEXT=title>
<h2>By year</h2>
<SFMT ByYear UL ORDER=ascend KEY=Year TEXT=Year>
</body></html>`)
	ts.MustAdd("BookPage", `<html><body><h1><SFMT title></h1></body></html>`)
	ts.MustAdd("YearPage", `<html><body><h1>Books from <SFMT Year></h1><SFMT Book UL TEXT=title></body></html>`)

	gen := htmlgen.New(site, ts)
	gen.PerObject["Home()"] = "Home"
	for _, oid := range site.Nodes() {
		switch {
		case len(oid) > 9 && oid[:9] == "BookPage(":
			gen.PerObject[oid] = "BookPage"
		case len(oid) > 9 && oid[:9] == "YearPage(":
			gen.PerObject[oid] = "YearPage"
		}
	}
	out, err := gen.Generate([]graph.OID{"Home()"})
	if err != nil {
		log.Fatal(err)
	}
	if err := out.WriteDir("quickstart-site"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- wrote %d pages to quickstart-site/\n", out.PageCount())
}
