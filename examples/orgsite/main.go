// Orgsite: the AT&T-Labs-Research-style organization site of §5.1 — home
// pages for ~400 members, organization, project, research-area, and
// publication pages, integrated from five sources (two relational tables,
// a structured project file, a BibTeX bibliography, and hand-written HTML
// bios), in internal and external versions built from the same query.
//
//	go run ./examples/orgsite [-people 400] [-out orgsite-out]
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"strudel/internal/core"
	"strudel/internal/sites"
)

func main() {
	people := flag.Int("people", 400, "number of lab members")
	out := flag.String("out", "orgsite-out", "output directory")
	flag.Parse()

	spec := sites.OrgSite(*people, *people/20+1, *people/10+1, *people/8+1)
	res, err := core.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"internal", "external"} {
		vr := res.Versions[name]
		dir := filepath.Join(*out, name)
		if err := vr.Output.WriteDir(dir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s site: %s → %s\n", name, vr.Stats, dir)
		for _, c := range vr.Checks {
			fmt.Printf("  %s: %s\n", c.Verdict, c.Reason)
		}
	}
	fmt.Printf("\ndata graph: %d sources integrated, %d nodes, %d edges\n",
		len(spec.Sources), res.Data.Graph().NumNodes(), res.Data.Graph().NumEdges())
	fmt.Println("The external site needed no new queries — five templates differ (§5.1).")
}
