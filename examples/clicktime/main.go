// Clicktime: dynamic ("click-time") site evaluation (§2.5, §7). Instead
// of materializing a site, the server computes each requested page by
// evaluating the incremental queries its site schema prescribes — with
// caching, lookahead, and cache invalidation on data change. This example
// starts the server on an ephemeral port, browses it over HTTP, changes
// the data, and shows what was recomputed.
//
//	go run ./examples/clicktime [-articles 120]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"strudel/internal/dynamic"
	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/schema"
	"strudel/internal/sites"
	"strudel/internal/struql"
	"strudel/internal/template"
)

func main() {
	articles := flag.Int("articles", 120, "number of wrapped articles")
	flag.Parse()

	// Warehouse the CNN data and derive the site schema — no site graph
	// is ever materialized in this example.
	spec := sites.CNN(*articles)
	med, err := mediator.New(spec.Sources...)
	if err != nil {
		log.Fatal(err)
	}
	data, err := med.Warehouse()
	if err != nil {
		log.Fatal(err)
	}
	q := struql.MustParse(sites.CNNQuery)
	ev := dynamic.NewEvaluator(schema.Build(q), data)
	ev.Lookahead = true

	ts := template.NewSet()
	ts.MustAdd("FrontPage", `<h1><SFMT name></h1><SFMT Category UL TEXT=name>`)
	ts.MustAdd("CategoryPage", `<h1><SFMT name></h1><SFMT Story EMBED UL>`)
	ts.MustAdd("Summary", `<SFMT FullStory TEXT=title>`)
	ts.MustAdd("ArticlePage", `<h1><SFMT title></h1><p><SFMT body></p>`)
	srv := dynamic.NewServer(ev, ts)
	srv.Root = dynamic.PageRef{Fn: "FrontPage"}
	for _, fn := range []string{"FrontPage", "CategoryPage", "Summary", "ArticlePage"} {
		srv.PerFn[fn] = fn
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("click-time server on %s\n\n", base)

	// Browse: front page, then the first category link on it.
	front := get(base + "/")
	fmt.Printf("GET / → %d bytes; front page starts: %.60s...\n", len(front), front)
	link := firstPageLink(front)
	cat := get(base + link)
	fmt.Printf("GET %s → %d bytes\n", link, len(cat))
	st := ev.StatsSnapshot()
	fmt.Printf("work so far: %d pages computed, %d incremental queries, %d cache hits\n\n",
		st.PagesComputed, st.QueriesRun, st.CacheHits)

	// Re-fetch: everything is cached.
	get(base + "/")
	get(base + link)
	st2 := ev.StatsSnapshot()
	fmt.Printf("after re-browsing: +%d pages computed, +%d cache hits\n\n",
		st2.PagesComputed-st.PagesComputed, st2.CacheHits-st.CacheHits)

	// A data change invalidates exactly the affected cached pages.
	dropped := ev.Invalidate(&mediator.Delta{
		AddedMembers: []mediator.Membership{{Coll: "Articles", OID: "breaking"}},
		AddedEdges: []graph.Edge{
			{From: "breaking", Label: "category", To: graph.NewString("world")},
			{From: "breaking", Label: "title", To: graph.NewString("Breaking news")},
		},
	})
	fmt.Printf("data change (new article) invalidated %d cached pages; cache now holds %d\n",
		dropped, ev.CacheSize())
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(b)
}

func firstPageLink(body string) string {
	i := strings.Index(body, `href="/page/`)
	if i < 0 {
		log.Fatal("no page link on front page")
	}
	rest := body[i+len(`href="`):]
	return rest[:strings.IndexByte(rest, '"')]
}
