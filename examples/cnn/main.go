// CNN demo: the paper's first example site (§5.1) — ~300 news articles
// wrapped from HTML pages, published as a general site and a "sports
// only" site whose query differs by exactly two predicates in one where
// clause, with all templates shared.
//
//	go run ./examples/cnn [-articles 300] [-out cnn-site]
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"strudel/internal/core"
	"strudel/internal/sites"
	"strudel/internal/struql"
)

func main() {
	articles := flag.Int("articles", 300, "number of wrapped articles")
	out := flag.String("out", "cnn-site", "output directory")
	flag.Parse()

	spec := sites.CNN(*articles)
	res, err := core.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"general", "sports"} {
		vr := res.Versions[name]
		dir := filepath.Join(*out, name)
		if err := vr.Output.WriteDir(dir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s site: %s → %s\n", name, vr.Stats, dir)
	}

	// Show the §5.1 claim concretely: the two queries differ in exactly
	// two predicates of one where clause.
	gq := struql.MustParse(sites.CNNQuery)
	sq := struql.MustParse(sites.CNNSportsQuery)
	extra := 0
	for i := range gq.Blocks {
		extra += len(sq.Blocks[i].Where) - len(gq.Blocks[i].Where)
	}
	fmt.Printf("\nsports query = general query + %d predicates; templates shared: %d\n",
		extra, len(spec.Versions[0].Templates))
}
