// Bilingual: the INRIA-Rodin-style site of §5.1 — one StruQL query
// defines an English view and a French view of the same data and creates
// the cross-links between them, so each English page links to its French
// equivalent and vice versa.
//
//	go run ./examples/bilingual [-projects 20] [-out bilingual-site]
package main

import (
	"flag"
	"fmt"
	"log"

	"strudel/internal/core"
	"strudel/internal/sites"
)

func main() {
	projects := flag.Int("projects", 20, "number of projects")
	out := flag.String("out", "bilingual-site", "output directory")
	flag.Parse()

	spec := sites.Bilingual(*projects)
	res, err := core.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	vr := res.Versions["both"]
	if err := vr.Output.WriteDir(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bilingual site: %s → %s\n", vr.Stats, *out)
	for _, c := range vr.Checks {
		fmt.Printf("  %s: %s\n", c.Verdict, c.Reason)
	}
	fmt.Println("\nOne query produced both language views, cross-linked page by page.")
}
