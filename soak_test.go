// Soak tests for fail-soft incremental rebuilds: a sustained storm of
// seeded random edits per example site, with the incrementally
// maintained pages byte-compared against a from-scratch build after
// every single edit, and filesystem faults injected into every step of
// patch publication.
//
// SOAK_EDITS scales the storm length (default 60; CI runs 1000, and 250
// under the race detector).
package strudel_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"strudel/internal/core"
	"strudel/internal/faultfs"
	"strudel/internal/fsx"
	"strudel/internal/graph"
	"strudel/internal/ivm"
	"strudel/internal/mediator"
	"strudel/internal/obs"
	"strudel/internal/struql"
)

func soakEdits(t *testing.T) int {
	if s := os.Getenv("SOAK_EDITS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("SOAK_EDITS=%q: want a positive integer", s)
		}
		return n
	}
	return 60
}

// soakRand is the suite's self-contained LCG, so storms replay
// identically everywhere without math/rand's version skew.
type soakRand struct{ s uint64 }

func newSoakRand(seed uint64) *soakRand {
	return &soakRand{s: seed*2654435761 + 0x9e3779b97f4a7c15}
}

func (r *soakRand) n(k int) int {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return int((r.s >> 33) % uint64(k))
}

// soakEdit applies one random edit to a live data graph, drawing nodes,
// labels, and collections from the graph itself so the same generator
// storms every example site. The value vocabulary keeps strings
// alphabetic so no string renders like an int (a cross-type Skolem
// display collision would make page names issuance-order-dependent).
func soakEdit(r *soakRand, g *graph.Graph) {
	nodes := g.Nodes()
	if len(nodes) == 0 {
		g.AddToCollection("Reborn", "seedling")
		g.AddEdge("seedling", "title", graph.NewString("regrown"))
		return
	}
	node := func() graph.OID { return nodes[r.n(len(nodes))] }
	labels := g.Labels()
	label := func() string {
		if len(labels) == 0 || r.n(8) == 0 {
			return "soaknote"
		}
		return labels[r.n(len(labels))]
	}
	value := func() graph.Value {
		switch r.n(3) {
		case 0:
			return graph.NewString([]string{"alpha", "beta", "gamma", "delta"}[r.n(4)])
		case 1:
			return graph.NewInt(int64(1990 + r.n(10)))
		default:
			return graph.NewNode(node())
		}
	}
	colls := g.CollectionNames()
	coll := func() string {
		if len(colls) == 0 {
			return "Reborn"
		}
		return colls[r.n(len(colls))]
	}
	switch r.n(6) {
	case 0: // add an edge
		g.AddEdge(node(), label(), value())
	case 1: // remove an existing edge
		if es := g.Out(node()); len(es) > 0 {
			e := es[r.n(len(es))]
			g.RemoveEdge(e.From, e.Label, e.To)
		}
	case 2: // mutate a value in place
		if es := g.Out(node()); len(es) > 0 {
			e := es[r.n(len(es))]
			g.RemoveEdge(e.From, e.Label, e.To)
			g.AddEdge(e.From, e.Label, value())
		}
	case 3: // membership add
		g.AddToCollection(coll(), node())
	case 4: // membership remove
		if c := coll(); g.CollectionSize(c) > 0 {
			members := g.Collection(c)
			g.RemoveFromCollection(c, members[r.n(len(members))])
		}
	case 5: // whole-record deletion
		o := node()
		for _, e := range g.Out(o) {
			g.RemoveEdge(e.From, e.Label, e.To)
		}
		for _, c := range g.CollectionsOf(o) {
			g.RemoveFromCollection(c, o)
		}
		g.RemoveNode(o)
	}
}

// requireSamePages byte-compares the maintained site's pages against a
// from-scratch build of the same version over the same data.
func requireSamePages(t *testing.T, s *ivm.Site, v *core.Version, data *graph.Graph, context string) {
	t.Helper()
	vr, err := core.BuildVersionWith(v, struql.NewGraphSource(data), nil)
	if err != nil {
		t.Fatalf("%s: oracle build: %v", context, err)
	}
	got, want := s.Output().Pages, vr.Output.Pages
	if len(got) != len(want) {
		t.Fatalf("%s: %d pages incrementally, %d from scratch", context, len(got), len(want))
	}
	for name, w := range want {
		if got[name] != w {
			t.Fatalf("%s: page %s diverged after incremental maintenance:\n--- incremental\n%s\n--- full\n%s",
				context, name, got[name], w)
		}
	}
}

// TestSoakEditStorm runs the storm against the first version of every
// example site: each seeded random edit is diffed, applied
// incrementally, and the maintained pages are compared byte-for-byte
// with a full rebuild — after every edit, for the whole storm.
func TestSoakEditStorm(t *testing.T) {
	edits := soakEdits(t)
	for name, mk := range chaosSpecs() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := mk()
			version := &spec.Versions[0]
			med, err := mediator.New(spec.Sources...)
			if err != nil {
				t.Fatal(err)
			}
			data, err := med.Warehouse()
			if err != nil {
				t.Fatal(err)
			}
			cur := data.Graph().Copy()
			m := &obs.IVMMetrics{}
			site, err := ivm.NewSite(version, struql.NewGraphSource(cur), nil, m)
			if err != nil {
				t.Fatal(err)
			}
			requireSamePages(t, site, version, cur, "initial build")

			r := newSoakRand(uint64(len(name)) + 42)
			for i := 0; i < edits; i++ {
				prev := cur.Copy()
				soakEdit(r, cur)
				delta := mediator.Diff(prev, cur)
				if err := site.Apply(struql.NewGraphSource(cur), delta); err != nil {
					t.Fatalf("edit %d: apply: %v", i, err)
				}
				requireSamePages(t, site, version, cur, fmt.Sprintf("edit %d", i))
			}
			applied := m.DeltasApplied.Load()
			rebuilds := m.FullRebuilds.Load()
			t.Logf("%s: %d edits: %d incremental applies, %d full rebuilds", name, edits, applied, rebuilds)
			if applied+rebuilds == 0 && edits > 0 {
				t.Error("storm exercised neither the incremental nor the degraded path")
			}
		})
	}
}

// TestSoakPatchFaults injects a fault into every filesystem operation a
// patch publication performs — staged writes, hardlinks, directory
// creation, the swap renames, and the final sync — and asserts the
// published tree is always either the complete old generation or the
// complete new one, with a clean retry always converging on the new.
func TestSoakPatchFaults(t *testing.T) {
	spec := chaosSpecs()["homepage"]()
	version := &spec.Versions[0]
	med, err := mediator.New(spec.Sources...)
	if err != nil {
		t.Fatal(err)
	}
	warehouse, err := med.Warehouse()
	if err != nil {
		t.Fatal(err)
	}
	base := warehouse.Graph()

	edited := base.Copy()
	r := newSoakRand(7)
	for i := 0; i < 5; i++ {
		soakEdit(r, edited)
	}
	delta := mediator.Diff(base, edited)
	if delta.Empty() {
		t.Fatal("fixture edits produced an empty delta")
	}

	// Golden trees for both generations, from clean publishes.
	tmp := t.TempDir()
	goldenOld := filepath.Join(tmp, "golden-old")
	goldenNew := filepath.Join(tmp, "golden-new")
	for dir, g := range map[string]*graph.Graph{goldenOld: base, goldenNew: edited} {
		vr, err := core.BuildVersionWith(version, struql.NewGraphSource(g), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := vr.Output.Publish(fsx.OS, dir, nil); err != nil {
			t.Fatal(err)
		}
	}
	oldTree := readTree(t, goldenOld)
	newTree := readTree(t, goldenNew)
	if sameTree(oldTree, newTree) {
		t.Fatal("fixture edits did not change any page")
	}

	nFaults := len(newTree) + 3
	for _, kind := range []string{"write", "shortwrite", "rename", "sync", "link", "mkdir"} {
		for fault := 1; fault <= nFaults; fault++ {
			cur := base.Copy()
			site, err := ivm.NewSite(version, struql.NewGraphSource(cur), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join(tmp, "site")
			if err := os.RemoveAll(dir); err != nil {
				t.Fatal(err)
			}
			if err := os.RemoveAll(dir + ".prev"); err != nil {
				t.Fatal(err)
			}
			if err := site.Publish(fsx.OS, dir, nil); err != nil {
				t.Fatalf("%s/%d: clean initial publish: %v", kind, fault, err)
			}
			cur = edited.Copy()
			if err := site.Apply(struql.NewGraphSource(cur), delta); err != nil {
				t.Fatalf("%s/%d: apply: %v", kind, fault, err)
			}

			ffs := &faultfs.FS{Inner: fsx.OS}
			switch kind {
			case "write":
				ffs.FailWriteN = fault
			case "shortwrite":
				ffs.ShortWriteN = fault
			case "rename":
				ffs.FailRenameN = fault
			case "sync":
				ffs.FailSyncN = fault
			case "link":
				ffs.FailLinkN = fault
			case "mkdir":
				ffs.FailMkdirN = fault
			}
			perr := site.Publish(ffs, dir, nil)
			got := readTree(t, dir)
			switch {
			case perr == nil:
				// Link faults fall back to plain writes, so a "failed"
				// operation can still complete the patch.
				if !sameTree(got, newTree) {
					t.Fatalf("%s/%d: successful patch differs from full rebuild", kind, fault)
				}
			case kind == "sync":
				if !sameTree(got, newTree) && !sameTree(got, oldTree) {
					t.Fatalf("%s/%d: torn tree after sync fault", kind, fault)
				}
			default:
				if !sameTree(got, oldTree) {
					t.Fatalf("%s/%d: failed patch left a torn tree (%d files)", kind, fault, len(got))
				}
			}

			// Retry without faults: the retained dirty set must converge
			// the published tree on the new generation.
			if err := site.Publish(fsx.OS, dir, nil); err != nil {
				t.Fatalf("%s/%d: clean retry: %v", kind, fault, err)
			}
			if got := readTree(t, dir); !sameTree(got, newTree) {
				t.Fatalf("%s/%d: retry did not converge on the new generation", kind, fault)
			}
		}
	}
}

// TestSoakFailedPublishAccumulatesDirty covers the cross-apply dirty
// set: pages dirtied by an apply whose publish failed must still be
// written by the next successful publish, together with later edits.
func TestSoakFailedPublishAccumulatesDirty(t *testing.T) {
	spec := chaosSpecs()["homepage"]()
	version := &spec.Versions[0]
	med, err := mediator.New(spec.Sources...)
	if err != nil {
		t.Fatal(err)
	}
	warehouse, err := med.Warehouse()
	if err != nil {
		t.Fatal(err)
	}
	cur := warehouse.Graph().Copy()
	site, err := ivm.NewSite(version, struql.NewGraphSource(cur), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "site")
	if err := site.Publish(fsx.OS, dir, nil); err != nil {
		t.Fatal(err)
	}

	r := newSoakRand(11)
	edit := func() {
		prev := cur.Copy()
		soakEdit(r, cur)
		if err := site.Apply(struql.NewGraphSource(cur), mediator.Diff(prev, cur)); err != nil {
			t.Fatal(err)
		}
	}
	edit()
	ffs := &faultfs.FS{Inner: fsx.OS, FailRenameN: 1}
	if err := site.Publish(ffs, dir, nil); err == nil {
		t.Fatal("faulted publish unexpectedly succeeded")
	}
	edit()
	if err := site.Publish(fsx.OS, dir, nil); err != nil {
		t.Fatal(err)
	}
	vr, err := core.BuildVersionWith(version, struql.NewGraphSource(cur), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(t.TempDir(), "golden")
	if err := vr.Output.Publish(fsx.OS, want, nil); err != nil {
		t.Fatal(err)
	}
	if !sameTree(readTree(t, dir), readTree(t, want)) {
		t.Error("published tree is missing pages dirtied before the failed publish")
	}
}
