// Experiment shape tests: each test asserts (and logs, for
// EXPERIMENTS.md) the qualitative claim the paper makes — who wins, what
// is shared, what grows — rather than absolute times, which the bench
// harness measures.
package strudel_test

import (
	"strings"
	"testing"

	"strudel/internal/baseline"
	"strudel/internal/constraints"
	"strudel/internal/core"
	"strudel/internal/dynamic"
	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/repo"
	"strudel/internal/schema"
	"strudel/internal/sites"
	"strudel/internal/struql"
	"strudel/internal/synth"
	"strudel/internal/wrapper/bibtex"
)

func TestE1_SiteStatsTable(t *testing.T) {
	// Paper (§5.1): internal AT&T site = 115-line query, 17 templates
	// (380 lines), ~400 member pages; external site: no new queries, 5
	// changed templates.
	spec := sites.OrgSite(60, 4, 8, 10)
	res, err := core.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	in := res.Versions["internal"]
	t.Logf("E1 orgsite internal: %s", in.Stats)
	t.Logf("E1 paper:            query: 115 lines; templates: 17 (380 lines)")
	if in.Stats.Templates != 17 {
		t.Errorf("templates = %d, want 17", in.Stats.Templates)
	}
	if spec.Versions[0].Queries[0] != spec.Versions[1].Queries[0] {
		t.Error("external must not add queries")
	}
}

func TestE1_PaperScale(t *testing.T) {
	// The paper's full scale: ~400 member home pages.
	spec := sites.OrgSite(400, 21, 41, 51)
	res, err := core.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	in := res.Versions["internal"]
	persons := 0
	for oid := range in.Output.PageFiles {
		if strings.HasPrefix(string(oid), "PersonPage(") {
			persons++
		}
	}
	if persons != 400 {
		t.Errorf("person pages = %d, want 400", persons)
	}
	t.Logf("E1 at paper scale: %s", in.Stats)
	if !in.ChecksPass {
		t.Errorf("constraints failed at scale: %+v", in.Checks)
	}
}

func TestE2_SiteStatsTable(t *testing.T) {
	// Paper (§5.1): mff homepage = 48-line query, 13 templates (202 lines).
	res, err := core.Build(sites.Homepage(25))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Versions["internal"].Stats
	t.Logf("E2 homepage internal: %s", st)
	t.Logf("E2 paper:             query: 48 lines; templates: 13 (202 lines)")
	if st.QueryLines < 24 || st.QueryLines > 96 {
		t.Errorf("query lines = %d, want same order as 48", st.QueryLines)
	}
}

func TestE3_SiteStatsTable(t *testing.T) {
	// Paper (§5.1): CNN = 44-line query, 9 templates, ~300 articles;
	// sports-only = +2 predicates, same templates.
	res, err := core.Build(sites.CNN(300))
	if err != nil {
		t.Fatal(err)
	}
	gen := res.Versions["general"].Stats
	t.Logf("E3 cnn general: %s", gen)
	t.Logf("E3 paper:       query: 44 lines; templates: 9; ~300 articles")
	gq := struql.MustParse(sites.CNNQuery)
	sq := struql.MustParse(sites.CNNSportsQuery)
	extra := 0
	for i := range gq.Blocks {
		extra += len(sq.Blocks[i].Where) - len(gq.Blocks[i].Where)
	}
	if extra != 2 {
		t.Errorf("sports delta = %d predicates, want 2", extra)
	}
}

func TestE7_WorkCounts(t *testing.T) {
	// Dynamic evaluation computes only the browsed pages; static
	// evaluation pays for the whole site. Count the work.
	q := struql.MustParse(sites.CNNQuery)
	spec := sites.CNN(120)
	med, err := mediator.New(spec.Sources...)
	if err != nil {
		t.Fatal(err)
	}
	data, err := med.Warehouse()
	if err != nil {
		t.Fatal(err)
	}
	r, err := struql.Eval(q, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	staticPages := 0
	for _, oid := range r.Graph.Nodes() {
		if strings.Contains(string(oid), "(") {
			staticPages++
		}
	}
	ev := dynamic.NewEvaluator(schema.Build(q), data)
	cur := dynamic.PageRef{Fn: "FrontPage"}
	for c := 0; c < 10; c++ {
		pd, err := ev.Page(cur)
		if err != nil {
			t.Fatal(err)
		}
		if len(pd.Links) == 0 {
			break
		}
		cur = pd.Links[c%len(pd.Links)]
	}
	st := ev.StatsSnapshot()
	t.Logf("E7: static site objects = %d; dynamic 10-click session computed %d pages (%d queries)",
		staticPages, st.PagesComputed, st.QueriesRun)
	if st.PagesComputed >= staticPages {
		t.Errorf("dynamic session computed %d pages, static site has %d — dynamic should be lazy",
			st.PagesComputed, staticPages)
	}
}

func TestE8_IncrementalMatchesFullAndSkips(t *testing.T) {
	q := struql.MustParse(sites.HomepageQuery)
	data, err := sites.HomepageData(100)
	if err != nil {
		t.Fatal(err)
	}
	r, err := struql.Eval(q, struql.NewGraphSource(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	updated := data.Copy()
	updated.AddToCollection("Publications", "new1")
	updated.AddEdge("new1", "title", graph.NewString("New"))
	updated.AddEdge("new1", "year", graph.NewInt(2000))
	delta := &mediator.Delta{
		AddedEdges: []graph.Edge{
			{From: "new1", Label: "title", To: graph.NewString("New")},
			{From: "new1", Label: "year", To: graph.NewInt(2000)},
		},
		AddedMembers: []mediator.Membership{{Coll: "Publications", OID: "new1"}},
	}
	inc, err := dynamic.Incremental(q, r.Graph, struql.NewGraphSource(updated), delta)
	if err != nil {
		t.Fatal(err)
	}
	full, err := struql.Eval(q, struql.NewGraphSource(updated), nil)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Site.Dump() != full.Graph.Dump() {
		t.Error("incremental result differs from full rebuild")
	}
	t.Logf("E8: blocks re-evaluated = %d, skipped = %d", inc.BlocksReevaluated, inc.BlocksSkipped)
	if inc.BlocksSkipped == 0 {
		t.Error("a publication-only delta should skip the patent/project blocks")
	}
}

func TestE9_SecondVersionShares(t *testing.T) {
	spec := sites.OrgSite(40, 3, 6, 8)
	med, err := mediator.New(spec.Sources...)
	if err != nil {
		t.Fatal(err)
	}
	data, err := med.Warehouse()
	if err != nil {
		t.Fatal(err)
	}
	first, err := core.BuildVersion(&spec.Versions[0], data)
	if err != nil {
		t.Fatal(err)
	}
	second, err := core.RenderVersion(&spec.Versions[1], first.Queries, first.SiteGraph)
	if err != nil {
		t.Fatal(err)
	}
	if second.SiteGraph != first.SiteGraph {
		t.Error("second version must reuse the site graph")
	}
	t.Logf("E9: first version pages = %d, second (render-only) pages = %d",
		first.Stats.Pages, second.Stats.Pages)
}

func TestFig8_SpecSizeTable(t *testing.T) {
	// Fig. 8's x-axis (structural complexity): declarative spec size
	// grows by a constant ~7 lines per grouping dimension, while the
	// procedural generator grows by a hand-written loop nest (~25 lines
	// per dimension in internal/baseline — see ProceduralGrouped and
	// ProceduralHomepage).
	for _, dims := range []int{1, 2, 4, 8} {
		q := baseline.GroupedQuery("Publications", dims)
		lines := len(strings.Split(strings.TrimSpace(q), "\n"))
		parsed := struql.MustParse(q)
		t.Logf("Fig8: dims=%d → query lines=%d, link clauses=%d", dims, lines, parsed.LinkClauseCount())
	}
}

func TestE6_IndexedAgreesWithNaive(t *testing.T) {
	// Correctness precondition of the E6 speed comparison.
	g, err := bibtex.Load(synth.Bibliography(120, "e6"), bibtex.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, qs := range e6Queries {
		q := struql.MustParse(qs)
		ri, err := struql.Eval(q, repo.NewIndexed(g.Copy()), nil)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := struql.Eval(q, struql.NewGraphSource(g), &struql.Options{NoReorder: true})
		if err != nil {
			t.Fatal(err)
		}
		if ri.Graph.Dump() != rn.Graph.Dump() {
			t.Errorf("E6: indexed and naive disagree on %s", qs)
		}
	}
}

func TestE12_ThreeCheckersAgree(t *testing.T) {
	q := struql.MustParse(sites.HomepageQuery)
	data, err := sites.HomepageData(60)
	if err != nil {
		t.Fatal(err)
	}
	ix := repo.NewIndexed(data)
	r, err := struql.Eval(q, ix, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := schema.Build(q)
	c, err := constraints.Parse(`every PaperPresentation reachable from CategoryPage via "Paper"`)
	if err != nil {
		t.Fatal(err)
	}
	static := c.CheckStatic(s)
	dataRes := c.CheckData(s, ix)
	site := c.CheckSite(r.Graph)
	t.Logf("E12: static=%s data=%s site=%s", static.Verdict, dataRes.Verdict, site.Verdict)
	if dataRes.Verdict != site.Verdict {
		t.Errorf("data-level (%s: %s) and site-level (%s: %s) checks disagree",
			dataRes.Verdict, dataRes.Reason, site.Verdict, site.Reason)
	}
	if static.Verdict == constraints.Violated && site.Verdict == constraints.Verified {
		t.Error("static checker must stay sound")
	}
}
