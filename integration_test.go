// Cross-module integration tests exercising the whole system through its
// public seams: wrappers → mediator → repository persistence → query →
// schema → constraints → templates → generated HTML.
package strudel_test

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"strudel/internal/constraints"
	"strudel/internal/core"
	"strudel/internal/dynamic"
	"strudel/internal/mediator"
	"strudel/internal/obs"
	"strudel/internal/repo"
	"strudel/internal/schema"
	"strudel/internal/sites"
	"strudel/internal/struql"
)

// TestPipelineArchitecture walks Fig. 1 end to end with persistence in
// the middle: warehouse the CNN sources, save the data graph to disk in
// both formats, reload it, evaluate the site query, verify constraints,
// and render — the reloaded repository must produce the same site as the
// in-memory one.
func TestPipelineArchitecture(t *testing.T) {
	spec := sites.CNN(40)
	med, err := mediator.New(spec.Sources...)
	if err != nil {
		t.Fatal(err)
	}
	warehouse, err := med.Warehouse()
	if err != nil {
		t.Fatal(err)
	}
	// Persist and reload through both formats.
	r := repo.NewRepository()
	r.Put("data", warehouse.Graph())
	textDir := filepath.Join(t.TempDir(), "text")
	binDir := filepath.Join(t.TempDir(), "bin")
	if err := r.Save(textDir); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveBinary(binDir); err != nil {
		t.Fatal(err)
	}
	fromText := repo.NewRepository()
	if err := fromText.Load(textDir); err != nil {
		t.Fatal(err)
	}
	fromBin := repo.NewRepository()
	if err := fromBin.LoadBinary(binDir); err != nil {
		t.Fatal(err)
	}
	q := struql.MustParse(sites.CNNQuery)
	build := func(src struql.Source) string {
		res, err := struql.Eval(q, src, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Graph.Dump()
	}
	direct := build(warehouse)
	if got := build(fromText.Get("data")); got != direct {
		t.Error("text-persisted data graph produced a different site")
	}
	if got := build(fromBin.Get("data")); got != direct {
		t.Error("binary-persisted data graph produced a different site")
	}
	// Constraints on the rebuilt site.
	c, err := constraints.Parse(`every ArticlePage reachable from FrontPage via _*`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := struql.Eval(q, fromBin.Get("data"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := c.CheckSite(res.Graph); v.Verdict != constraints.Verified {
		t.Errorf("constraint on reloaded site: %s (%s)", v.Verdict, v.Reason)
	}
}

// TestStaticDynamicAndMaintainedAgree builds the same version three ways
// — one-shot static build, dynamic materialization, and the incremental
// maintainer after a change — and checks they tell one story.
func TestStaticDynamicAndMaintainedAgree(t *testing.T) {
	spec := sites.CNN(30)
	med, err := mediator.New(spec.Sources...)
	if err != nil {
		t.Fatal(err)
	}
	data, err := med.Warehouse()
	if err != nil {
		t.Fatal(err)
	}
	q := struql.MustParse(sites.CNNQuery)
	static, err := struql.Eval(q, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := dynamic.NewEvaluator(schema.Build(q), data)
	dyn, err := ev.MaterializeAll()
	if err != nil {
		t.Fatal(err)
	}
	// Every dynamically discovered page exists statically with the same
	// out-edges.
	for _, oid := range dyn.Nodes() {
		if _, isPage := ev.RefFor(oid); !isPage {
			continue
		}
		so, do := static.Graph.Out(oid), dyn.Out(oid)
		if len(so) != len(do) {
			t.Errorf("%s: static %d edges, dynamic %d", oid, len(so), len(do))
		}
	}
	// The maintainer reproduces a from-scratch rebuild page for page.
	m, err := core.NewMaintainer(&spec.Versions[0], data)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.BuildVersion(&spec.Versions[0], data)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range fresh.Output.Pages {
		if m.Output().Pages[name] != want {
			t.Errorf("maintainer page %s differs from fresh build", name)
		}
	}
}

// TestSchemaDrivenToolingConsistency: the site schema derived from each
// bundled site's query names every Skolem function the evaluated site
// actually uses, and the schema-recovered query reproduces the site for
// aggregate-free queries.
func TestSchemaDrivenToolingConsistency(t *testing.T) {
	cases := map[string]string{
		"homepage":  sites.HomepageQuery,
		"cnn":       sites.CNNQuery,
		"bilingual": sites.BilingualQuery,
	}
	for name, qs := range cases {
		q := struql.MustParse(qs)
		s := schema.Build(q)
		for _, fn := range q.SkolemFunctions() {
			if !s.HasNode(fn) {
				t.Errorf("%s: schema missing %s", name, fn)
			}
		}
	}
	// Recovery check on the bilingual query (no arc-copy idiosyncrasies).
	spec := sites.Bilingual(5)
	med, _ := mediator.New(spec.Sources...)
	data, err := med.Warehouse()
	if err != nil {
		t.Fatal(err)
	}
	q := struql.MustParse(sites.BilingualQuery)
	orig, err := struql.Eval(q, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := struql.Eval(schema.Build(q).RecoverQuery(), data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Graph.Dump() != rec.Graph.Dump() {
		t.Error("schema-recovered bilingual query diverged")
	}
}

// TestInstrumentedPipelineEndToEnd drives the full pipeline — wrappers,
// mediator, query, generation — with every instrumentation sink and the
// tracer attached, and checks two things: the observed build is
// byte-identical to the unobserved one, and the cross-layer metric
// totals are mutually consistent (what one layer hands off is what the
// next layer reports receiving).
func TestInstrumentedPipelineEndToEnd(t *testing.T) {
	spec := sites.CNN(40)
	plain, err := core.BuildWith(spec, &core.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	opts := &core.Options{
		Parallelism: 2,
		Eval:        &obs.EvalMetrics{},
		Source:      &obs.SourceMetrics{},
		Gen:         &obs.GenMetrics{},
		Trace:       obs.NewTracer(),
	}
	observed, err := core.BuildWith(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	for vname, pv := range plain.Versions {
		ov := observed.Versions[vname]
		if ov == nil {
			t.Fatalf("version %s missing from observed build", vname)
		}
		for file, want := range pv.Output.Pages {
			if ov.Output.Pages[file] != want {
				t.Errorf("version %s: page %s differs under instrumentation", vname, file)
			}
		}
	}
	// Cross-layer consistency.
	if got, want := opts.Source.Loads.Load(), int64(len(spec.Sources)); got != want {
		t.Errorf("source loads = %d, want %d", got, want)
	}
	totalPages := int64(0)
	for _, vr := range observed.Versions {
		totalPages += int64(len(vr.Output.Pages))
	}
	if got := opts.Gen.Pages.Load(); got != totalPages {
		t.Errorf("generator counted %d pages, output has %d", got, totalPages)
	}
	// The bundled queries use no regex paths; exercise the NFA-cache
	// metrics with an explicit path query over the warehoused data. The
	// same path expression in two blocks compiles once and hits once.
	pathMetrics := &obs.EvalMetrics{}
	pq := struql.MustParse(`
		where Articles(a), a -> "headline"."text"? -> h create H(a)
		where Articles(a), a -> "headline"."text"? -> h create H2(a)`)
	if _, err := struql.Eval(pq, observed.Data, &struql.Options{Metrics: pathMetrics}); err != nil {
		t.Fatal(err)
	}
	if got := pathMetrics.NFAMisses.Load(); got != 1 {
		t.Errorf("NFA compilations = %d, want 1 (shared path compiles once)", got)
	}
	if got := pathMetrics.NFAHits.Load(); got != 1 {
		t.Errorf("NFA cache hits = %d, want 1 (second block reuses the matcher)", got)
	}
	// The trace must contain the whole pipeline, with the registry's JSON
	// view parseable (the /debug/vars contract).
	seen := map[string]bool{}
	for _, s := range opts.Trace.Spans() {
		seen[s.Name] = true
	}
	for _, stage := range []string{"build", "wrap", "version", "query", "generate"} {
		if !seen[stage] {
			t.Errorf("trace missing %q stage", stage)
		}
	}
	reg := obs.NewRegistry()
	reg.Register("eval", opts.Eval)
	reg.Register("sources", opts.Source)
	reg.Register("htmlgen", opts.Gen)
	var parsed map[string]map[string]any
	if err := json.Unmarshal([]byte(reg.String()), &parsed); err != nil {
		t.Fatalf("registry JSON does not parse: %v", err)
	}
	if _, ok := parsed["eval"]["where_evals"]; !ok {
		t.Error("registry JSON missing eval.where_evals")
	}
}

// TestProprietaryNeverLeaksExternally sweeps every page of the external
// org site for the synthetic proprietary markers.
func TestProprietaryNeverLeaksExternally(t *testing.T) {
	res, err := core.Build(sites.OrgSite(60, 4, 12, 16))
	if err != nil {
		t.Fatal(err)
	}
	ex := res.Versions["external"]
	for name, page := range ex.Output.Pages {
		if strings.Contains(page, "comp-band") {
			t.Errorf("external page %s leaks internal compensation data", name)
		}
		if strings.Contains(page, "Phone:") {
			t.Errorf("external page %s leaks phone numbers", name)
		}
	}
	in := res.Versions["internal"]
	var leaksExist bool
	for _, page := range in.Output.Pages {
		if strings.Contains(page, "comp-band") {
			leaksExist = true
		}
	}
	if !leaksExist {
		t.Error("internal site should show internal data (fixture broken)")
	}
}
