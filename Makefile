GO ?= go

.PHONY: all build test race vet bench check serve-smoke query-smoke fuzz-smoke chaos-smoke chaos-serve soak-smoke loadgen-smoke bench-serve bench-query clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The build pipeline is parallel by default, so the race detector is part
# of the standard gate, not an optional extra.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .

# serve-smoke boots the real strudel-serve binary against a tiny site,
# probes / and /healthz, and asserts a clean SIGTERM drain.
serve-smoke:
	sh scripts/serve-smoke.sh

# query-smoke drives the query API on the real binary end to end:
# schema introspection, a query, cursor pagination, EXPLAIN, a guard
# trip, and the queryapi metrics group on /debug/vars.
query-smoke:
	sh scripts/query_smoke.sh

# fuzz-smoke runs every fuzz target briefly. Go allows one -fuzz pattern
# per invocation, so the targets run one at a time; each starts from the
# checked-in seed corpus under its package's testdata/fuzz.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/struql
	$(GO) test -run='^$$' -fuzz='^FuzzEval$$' -fuzztime=$(FUZZTIME) ./internal/struql
	$(GO) test -run='^$$' -fuzz='^FuzzDifferential$$' -fuzztime=$(FUZZTIME) ./internal/struql
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/ddl
	$(GO) test -run='^$$' -fuzz='^FuzzParseAndRender$$' -fuzztime=$(FUZZTIME) ./internal/template
	$(GO) test -run='^$$' -fuzz='^FuzzExtract$$' -fuzztime=$(FUZZTIME) ./internal/wrapper/htmlwrap
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/wrapper/bibtex
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeBinary$$' -fuzztime=$(FUZZTIME) ./internal/repo
	$(GO) test -run='^$$' -fuzz='^FuzzLoadLenient$$' -fuzztime=$(FUZZTIME) ./internal/wrapper/csvrel
	$(GO) test -run='^$$' -fuzz='^FuzzLoadLenient$$' -fuzztime=$(FUZZTIME) ./internal/wrapper/jsonwrap
	$(GO) test -run='^$$' -fuzz='^FuzzQueryEndpoint$$' -fuzztime=$(FUZZTIME) ./internal/queryapi

# chaos-smoke drives the fault-injection suite: filesystem faults at
# every publish step across all example sites and parallelism settings,
# plus corrupted-source lenient builds — once plain, once under the race
# detector.
chaos-smoke:
	$(GO) test -count=1 -run '^TestChaos' .
	$(GO) test -count=1 -race -run '^TestChaos' .

# chaos-serve runs the gray-failure serving drill: faultnet-proxied
# replicas (one slow, one flapping) under oracle-verified load, once
# plain (writing the drill report to $CHAOS_SERVE_OUT) and once under
# the race detector.
chaos-serve:
	sh scripts/chaos_serve.sh

# soak-smoke runs the incremental-maintenance edit storm: 1,000 seeded
# random edits per example site with the patched pages byte-compared
# against a full rebuild after every edit — once plain, once (shorter)
# under the race detector.
SOAK_EDITS ?= 1000
SOAK_EDITS_RACE ?= 250
soak-smoke:
	SOAK_EDITS=$(SOAK_EDITS) $(GO) test -count=1 -timeout 20m -run '^TestSoak' .
	SOAK_EDITS=$(SOAK_EDITS_RACE) $(GO) test -count=1 -race -timeout 20m -run '^TestSoak' .

# loadgen-smoke runs the open-loop load generator against an in-process
# sharded fleet for a short fixed window, asserting non-zero throughput
# and zero differential-oracle mismatches; the raced serving-invariant
# drills (reload under load, chaos kills) run alongside it.
loadgen-smoke:
	$(GO) test -count=1 -run '^TestLoadgenSmoke$$' -v ./internal/fleet
	$(GO) test -count=1 -race -run '^TestReloadUnderLoad$$|^TestChaosKillsUnderLoad$$' ./internal/fleet

# bench-serve load-tests the real strudel-serve binary at several shard
# counts and writes BENCH_serve.json (throughput + latency percentiles).
bench-serve:
	sh scripts/bench_serve.sh

# bench-query measures the query API against page serving on the same
# fleet (E17) and writes BENCH_query.json.
bench-query:
	sh scripts/bench_query.sh

# check is what CI runs.
check: vet race

clean:
	$(GO) clean ./...
