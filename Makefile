GO ?= go

.PHONY: all build test race vet bench check serve-smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The build pipeline is parallel by default, so the race detector is part
# of the standard gate, not an optional extra.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .

# serve-smoke boots the real strudel-serve binary against a tiny site,
# probes / and /healthz, and asserts a clean SIGTERM drain.
serve-smoke:
	sh scripts/serve-smoke.sh

# check is what CI runs.
check: vet race

clean:
	$(GO) clean ./...
