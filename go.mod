module strudel

go 1.22
