package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// watchFixture builds a two-publication site under a watcher and
// returns it with the ddl path and output dir.
func watchFixture(t *testing.T) (*watcher, string, string) {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	ddl := write("d.ddl", `
collection Pubs;
node p1 in Pubs { title "First paper"; }
node p2 in Pubs { title "Second paper"; }
`)
	query := write("site.struql", `
create Root()
link Root() -> "title" -> "Home"
where Pubs(x)
link Root() -> "pub" -> PubPage(x)
{ where x -> "title" -> tt link PubPage(x) -> "title" -> tt }
`)
	tmplRoot := write("root.tmpl", `<h1><SFMT title></h1><SFMT pub UL TEXT=title>`)
	tmplPub := write("pub.tmpl", `<h2><SFMT title></h2>`)
	out := filepath.Join(dir, "site")

	files, err := assembleSources([]string{ddl}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	version, err := makeVersion(query,
		[]string{"Root=" + tmplRoot, "Pub=" + tmplPub}, nil,
		[]string{"Root()=Root", "PubPage=Pub"}, []string{"Root()"},
		[]string{`every PubPage has "title"`})
	if err != nil {
		t.Fatal(err)
	}
	w, err := newWatcher(files, version, out, nil, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	return w, ddl, out
}

func readPage(t *testing.T, out, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(out, name))
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return string(b)
}

func TestWatchIncrementalEditPatchesSite(t *testing.T) {
	w, ddl, out := watchFixture(t)
	if got := readPage(t, out, "index.html"); !strings.Contains(got, "First paper") {
		t.Fatalf("initial index:\n%s", got)
	}
	if pub, _ := w.tick(); pub {
		t.Error("tick with no edits republished")
	}

	// Retitle p1; the different content length guarantees the stamp moves
	// even on a coarse-mtime filesystem.
	err := os.WriteFile(ddl, []byte(`
collection Pubs;
node p1 in Pubs { title "First paper, revised edition"; }
node p2 in Pubs { title "Second paper"; }
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := w.tick()
	if err != nil {
		t.Fatal(err)
	}
	if !pub {
		t.Fatal("edit did not republish")
	}
	var p1Page string
	for name, body := range w.site.Output().Pages {
		if strings.Contains(body, "revised edition") {
			p1Page = name
		}
		if got := readPage(t, out, name); got != body {
			t.Errorf("published %s does not match generated page", name)
		}
	}
	if p1Page == "" {
		t.Error("no page carries the new title")
	}
	if got := w.metrics.DeltasApplied.Load(); got != 1 {
		t.Errorf("deltas applied = %d, want 1 (edit should stay row-level)", got)
	}
	if got := w.metrics.FullRebuilds.Load(); got != 0 {
		t.Errorf("full rebuilds = %d, want 0", got)
	}
	if w.metrics.PagesLinked.Load() == 0 {
		t.Error("patch publish hardlinked no unchanged pages")
	}
}

func TestWatchConstraintVetoKeepsOldTree(t *testing.T) {
	w, ddl, out := watchFixture(t)
	before := readPage(t, out, "index.html")

	// Drop p1's title: PubPage(p1) still exists but violates
	// `every PubPage has "title"` — publication must be vetoed.
	err := os.WriteFile(ddl, []byte(`
collection Pubs;
node p1 in Pubs { author "Nameless"; }
node p2 in Pubs { title "Second paper"; }
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	pub, terr := w.tick()
	if pub || terr == nil {
		t.Fatalf("veto tick: published=%v err=%v", pub, terr)
	}
	if got := readPage(t, out, "index.html"); got != before {
		t.Error("vetoed edit reached the published tree")
	}

	// A corrected edit publishes again, carrying everything accumulated.
	err = os.WriteFile(ddl, []byte(`
collection Pubs;
node p1 in Pubs { title "First paper, corrected"; }
node p2 in Pubs { title "Second paper"; }
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	pub, terr = w.tick()
	if terr != nil || !pub {
		t.Fatalf("recovery tick: published=%v err=%v", pub, terr)
	}
	if got := readPage(t, out, "index.html"); got == before || !strings.Contains(got, "corrected") {
		t.Errorf("recovered index:\n%s", got)
	}
}

func TestWatchSourceErrorRetries(t *testing.T) {
	w, ddl, out := watchFixture(t)
	before := readPage(t, out, "index.html")

	// A torn write: syntactically invalid DDL. The tick must keep the
	// old stamp (and tree) so the next tick retries.
	if err := os.WriteFile(ddl, []byte(`node p1 in {`), 0o644); err != nil {
		t.Fatal(err)
	}
	if pub, _ := w.tick(); pub {
		t.Error("broken source republished")
	}
	if got := readPage(t, out, "index.html"); got != before {
		t.Error("broken source changed the published tree")
	}

	if err := os.WriteFile(ddl, []byte(`
collection Pubs;
node p1 in Pubs { title "Recovered"; }
node p2 in Pubs { title "Second paper"; }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	pub, err := w.tick()
	if err != nil || !pub {
		t.Fatalf("recovery tick: published=%v err=%v", pub, err)
	}
	if got := readPage(t, out, "index.html"); !strings.Contains(got, "Recovered") {
		t.Errorf("recovered index:\n%s", got)
	}
}
