// Command strudel builds a browsable web site: it loads data through
// wrappers, evaluates the site-definition query, checks integrity
// constraints, and writes the generated HTML (the full Fig. 1 pipeline).
//
// Two modes:
//
//	strudel -example homepage|cnn|orgsite|bilingual -out DIR [-size N]
//	    builds one of the bundled reconstructions of the paper's sites
//	    (every version; one subdirectory per version).
//
//	strudel -data x.ddl -bibtex y.bib -query site.struql
//	        -template Name=file.tmpl -collection Coll=Name -object OID=Name
//	        -root 'RootPage()' -out DIR [-constraint '...']
//	    builds a site from explicit inputs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"strudel/internal/core"
	"strudel/internal/ddl"
	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/obs"
	"strudel/internal/sites"
	"strudel/internal/wrapper/bibtex"
	"strudel/internal/wrapper/csvrel"
	"strudel/internal/wrapper/jsonwrap"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var dataFiles, bibFiles, csvSpecs, jsonFiles, templates, collTpl, objTpl, roots, constraintsList stringList
	example := flag.String("example", "", "bundled site: homepage, cnn, orgsite, or bilingual")
	size := flag.Int("size", 0, "scale of the bundled site (publications, articles, or people; 0 = default)")
	out := flag.String("out", "site-out", "output directory")
	jobs := flag.Int("j", 0, "build parallelism: 0 = one worker per CPU, 1 = sequential (output is identical at any setting)")
	traceOut := flag.String("trace", "", "write pipeline trace events (JSON Lines: wrap, query, generate, write spans plus a final metrics line) to FILE; - means stderr")
	queryFile := flag.String("query", "", "StruQL site-definition query file")
	flag.Var(&dataFiles, "data", "data-definition-language file (repeatable)")
	flag.Var(&bibFiles, "bibtex", "BibTeX file (repeatable)")
	flag.Var(&csvSpecs, "csv", "CSV table as Table:keyColumn:file (repeatable)")
	flag.Var(&jsonFiles, "json", "JSON document as Collection:file (repeatable)")
	flag.Var(&templates, "template", "template as Name=file (repeatable)")
	flag.Var(&collTpl, "collection", "collection template as Coll=Name (repeatable)")
	flag.Var(&objTpl, "object", "object template as OID=Name (repeatable)")
	flag.Var(&roots, "root", "realization root oid, e.g. 'RootPage()' (repeatable)")
	flag.Var(&constraintsList, "constraint", "integrity constraint to check (repeatable)")
	flag.Parse()

	opts := &core.Options{Parallelism: *jobs}
	var reg *obs.Registry
	if *traceOut != "" {
		opts.Trace = obs.NewTracer()
		opts.Eval = &obs.EvalMetrics{}
		opts.Source = &obs.SourceMetrics{}
		opts.Gen = &obs.GenMetrics{}
		reg = obs.NewRegistry()
		reg.Register("eval", opts.Eval)
		reg.Register("sources", opts.Source)
		reg.Register("htmlgen", opts.Gen)
	}
	var err error
	if *example != "" {
		err = buildExample(*example, *size, *out, opts)
	} else {
		err = buildExplicit(dataFiles, bibFiles, csvSpecs, jsonFiles, *queryFile, templates, collTpl, objTpl, roots, constraintsList, *out, opts)
	}
	if *traceOut != "" {
		if terr := writeTrace(*traceOut, opts.Trace, reg); terr != nil {
			fmt.Fprintln(os.Stderr, "strudel: trace:", terr)
			if err == nil {
				os.Exit(1)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel:", err)
		os.Exit(1)
	}
}

// traceOf returns the options' tracer, tolerating nil options (tests
// call the build helpers with nil).
func traceOf(opts *core.Options) *obs.Tracer {
	if opts == nil {
		return nil
	}
	return opts.Trace
}

// writeTrace emits the recorded spans as JSON Lines followed by one
// final line with the metric snapshot, to path ("-" = stderr).
func writeTrace(path string, tr *obs.Tracer, reg *obs.Registry) error {
	w := os.Stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteJSON(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "{\"metrics\":%s}\n", reg.String())
	return err
}

func buildExample(name string, size int, out string, opts *core.Options) error {
	var spec *core.Spec
	switch name {
	case "homepage":
		if size == 0 {
			size = 25
		}
		spec = sites.Homepage(size)
	case "cnn":
		if size == 0 {
			size = 300
		}
		spec = sites.CNN(size)
	case "orgsite":
		if size == 0 {
			size = 400
		}
		spec = sites.OrgSite(size, size/20+1, size/10+1, size/8+1)
	case "bilingual":
		if size == 0 {
			size = 20
		}
		spec = sites.Bilingual(size)
	default:
		return fmt.Errorf("unknown example %q (homepage, cnn, orgsite, bilingual)", name)
	}
	res, err := core.BuildWith(spec, opts)
	if err != nil {
		return err
	}
	for name, vr := range res.Versions {
		dir := filepath.Join(out, name)
		ws := traceOf(opts).Start("write", "version", name, "dir", dir)
		err := vr.Output.WriteDir(dir)
		ws.End()
		if err != nil {
			return err
		}
		fmt.Printf("version %s: %s → %s\n", name, vr.Stats, dir)
		for i, c := range vr.Checks {
			fmt.Printf("  constraint %d: %s — %s\n", i+1, c.Verdict, c.Reason)
		}
	}
	return nil
}

func buildExplicit(dataFiles, bibFiles, csvSpecs, jsonFiles []string, queryFile string,
	templates, collTpl, objTpl, roots, constraintsList []string, out string, opts *core.Options) error {
	if queryFile == "" {
		return fmt.Errorf("provide -query FILE (or -example NAME)")
	}
	qb, err := os.ReadFile(queryFile)
	if err != nil {
		return err
	}
	var sources []mediator.Source
	for _, f := range dataFiles {
		f := f
		sources = append(sources, mediator.Source{Name: "ddl:" + f, Load: func() (*graph.Graph, error) {
			b, err := os.ReadFile(f)
			if err != nil {
				return nil, err
			}
			doc, err := ddl.Parse(string(b))
			if err != nil {
				return nil, err
			}
			return doc.Graph, nil
		}})
	}
	for _, f := range bibFiles {
		f := f
		sources = append(sources, mediator.Source{Name: "bib:" + f, Load: func() (*graph.Graph, error) {
			b, err := os.ReadFile(f)
			if err != nil {
				return nil, err
			}
			return bibtex.Load(string(b), bibtex.DefaultOptions())
		}})
	}
	for _, spec := range csvSpecs {
		parts := strings.SplitN(spec, ":", 3)
		if len(parts) != 3 {
			return fmt.Errorf("-csv wants Table:keyColumn:file, got %q", spec)
		}
		table, key, f := parts[0], parts[1], parts[2]
		sources = append(sources, mediator.Source{Name: "csv:" + f, Load: func() (*graph.Graph, error) {
			b, err := os.ReadFile(f)
			if err != nil {
				return nil, err
			}
			return csvrel.Load(string(b), csvrel.Options{Table: table, KeyColumn: key})
		}})
	}
	for _, spec := range jsonFiles {
		coll, f, ok := strings.Cut(spec, ":")
		if !ok {
			return fmt.Errorf("-json wants Collection:file, got %q", spec)
		}
		sources = append(sources, mediator.Source{Name: "json:" + f, Load: func() (*graph.Graph, error) {
			b, err := os.ReadFile(f)
			if err != nil {
				return nil, err
			}
			return jsonwrap.Load(strings.TrimSuffix(filepath.Base(f), filepath.Ext(f)), b,
				jsonwrap.Options{Collection: coll})
		}})
	}
	tmpl := map[string]string{}
	for _, spec := range templates {
		name, file, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-template wants Name=file, got %q", spec)
		}
		b, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		tmpl[name] = string(b)
	}
	version := core.Version{
		Name:          "main",
		Queries:       []string{string(qb)},
		Templates:     tmpl,
		PerCollection: splitPairs(collTpl),
		PerObject:     splitPairs(objTpl),
		Roots:         roots,
		Constraints:   constraintsList,
	}
	res, err := core.BuildWith(&core.Spec{Name: "cli", Sources: sources, Versions: []core.Version{version}}, opts)
	if err != nil {
		return err
	}
	vr := res.Versions["main"]
	ws := traceOf(opts).Start("write", "version", "main", "dir", out)
	if err := vr.Output.WriteDir(out); err != nil {
		ws.End()
		return err
	}
	ws.End()
	fmt.Printf("%s → %s\n", vr.Stats, out)
	for i, c := range vr.Checks {
		fmt.Printf("constraint %d: %s — %s\n", i+1, c.Verdict, c.Reason)
	}
	if !vr.ChecksPass {
		return fmt.Errorf("integrity constraints violated")
	}
	return nil
}

func splitPairs(list []string) map[string]string {
	m := map[string]string{}
	for _, spec := range list {
		if k, v, ok := strings.Cut(spec, "="); ok {
			m[k] = v
		}
	}
	return m
}
