// Command strudel builds a browsable web site: it loads data through
// wrappers, evaluates the site-definition query, checks integrity
// constraints, and writes the generated HTML (the full Fig. 1 pipeline).
//
// Two modes:
//
//	strudel -example homepage|cnn|orgsite|bilingual -out DIR [-size N]
//	    builds one of the bundled reconstructions of the paper's sites
//	    (every version; one subdirectory per version).
//
//	strudel -data x.ddl -bibtex y.bib -query site.struql
//	        -template Name=file.tmpl -collection Coll=Name -object OID=Name
//	        -root 'RootPage()' -out DIR [-constraint '...']
//	    builds a site from explicit inputs.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"strudel/internal/core"
	"strudel/internal/ddl"
	"strudel/internal/diag"
	"strudel/internal/fsx"
	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/obs"
	"strudel/internal/sites"
	"strudel/internal/wrapper/bibtex"
	"strudel/internal/wrapper/csvrel"
	"strudel/internal/wrapper/jsonwrap"
)

// Exit codes: 0 success, 1 generic/I-O failure, 2 flag misuse, 3 source
// error budget exceeded, 4 integrity constraint violated.
const (
	exitIO          = 1
	exitUsage       = 2
	exitBudget      = 3
	exitConstraints = 4
)

// errConstraints marks a build whose integrity constraints failed, so
// main can map it to its own exit code.
var errConstraints = errors.New("integrity constraints violated")

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var dataFiles, bibFiles, csvSpecs, jsonFiles, templates, collTpl, objTpl, roots, constraintsList stringList
	example := flag.String("example", "", "bundled site: homepage, cnn, orgsite, or bilingual")
	size := flag.Int("size", 0, "scale of the bundled site (publications, articles, or people; 0 = default)")
	out := flag.String("out", "site-out", "output directory")
	jobs := flag.Int("j", 0, "build parallelism: 0 = one worker per CPU, 1 = sequential (output is identical at any setting)")
	traceOut := flag.String("trace", "", "write pipeline trace events (JSON Lines: wrap, query, generate, write spans plus a final metrics line) to FILE; - means stderr")
	queryFile := flag.String("query", "", "StruQL site-definition query file")
	strict := flag.Bool("strict", false, "fail fast on the first malformed source record instead of skipping within the error budget")
	maxSrcErrs := flag.String("max-source-errors", "10%", "per-source error budget: a count (\"10\"), a percentage (\"5%\"), or \"all\"")
	maxRows := flag.Int("max-rows", 0, "abort query evaluation when an intermediate relation exceeds N rows (0 = unlimited)")
	maxNFA := flag.Int("max-nfa-states", 0, "abort a regular-path search after N visited product states (0 = unlimited)")
	evalTimeout := flag.Duration("eval-timeout", 0, "wall-clock budget per version's query evaluation (0 = none)")
	noStats := flag.Bool("no-stats", false, "plan queries with fixed heuristics instead of collected selectivity statistics (output is identical)")
	noReorder := flag.Bool("no-reorder", false, "evaluate query conditions in first-ready textual order instead of cost order (output is identical)")
	frozen := flag.Bool("frozen", true, "evaluate against the compact frozen graph snapshot; -frozen=false uses generic access paths (output is identical)")
	watch := flag.Bool("watch", false, "after the first build, keep running: poll the input files and patch only the affected pages of the published site on each edit")
	watchInterval := flag.Duration("watch-interval", 2*time.Second, "poll interval for -watch")
	flag.Var(&dataFiles, "data", "data-definition-language file (repeatable)")
	flag.Var(&bibFiles, "bibtex", "BibTeX file (repeatable)")
	flag.Var(&csvSpecs, "csv", "CSV table as Table:keyColumn:file (repeatable)")
	flag.Var(&jsonFiles, "json", "JSON document as Collection:file (repeatable)")
	flag.Var(&templates, "template", "template as Name=file (repeatable)")
	flag.Var(&collTpl, "collection", "collection template as Coll=Name (repeatable)")
	flag.Var(&objTpl, "object", "object template as OID=Name (repeatable)")
	flag.Var(&roots, "root", "realization root oid, e.g. 'RootPage()' (repeatable)")
	flag.Var(&constraintsList, "constraint", "integrity constraint to check (repeatable)")
	flag.Parse()

	budget, berr := diag.ParseBudget(*maxSrcErrs)
	if berr != nil {
		fmt.Fprintln(os.Stderr, "strudel:", berr)
		os.Exit(exitUsage)
	}
	opts := &core.Options{
		Parallelism:  *jobs,
		Lenient:      !*strict,
		Budget:       budget,
		MaxRows:      *maxRows,
		MaxNFAStates: *maxNFA,
		EvalTimeout:  *evalTimeout,
		NoStats:      *noStats,
		NoReorder:    *noReorder,
		NoFrozen:     !*frozen,
	}
	var reg *obs.Registry
	if *traceOut != "" {
		opts.Trace = obs.NewTracer()
		opts.Eval = &obs.EvalMetrics{}
		opts.Source = &obs.SourceMetrics{}
		opts.Gen = &obs.GenMetrics{}
		reg = obs.NewRegistry()
		reg.Register("eval", opts.Eval)
		reg.Register("sources", opts.Source)
		reg.Register("htmlgen", opts.Gen)
	}
	var err error
	switch {
	case *watch && *example != "":
		fmt.Fprintln(os.Stderr, "strudel: -watch needs explicit file inputs; the bundled examples synthesize their data in memory")
		os.Exit(exitUsage)
	case *watch:
		err = watchExplicit(dataFiles, bibFiles, csvSpecs, jsonFiles, *queryFile, templates, collTpl, objTpl, roots, constraintsList, *out, *watchInterval, opts)
	case *example != "":
		err = buildExample(*example, *size, *out, opts)
	default:
		err = buildExplicit(dataFiles, bibFiles, csvSpecs, jsonFiles, *queryFile, templates, collTpl, objTpl, roots, constraintsList, *out, opts)
	}
	if *traceOut != "" {
		if terr := writeTrace(*traceOut, opts.Trace, reg); terr != nil {
			fmt.Fprintln(os.Stderr, "strudel: trace:", terr)
			if err == nil {
				os.Exit(1)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps a build failure to its documented exit code.
func exitCode(err error) int {
	var be *diag.BudgetError
	switch {
	case errors.As(err, &be):
		return exitBudget
	case errors.Is(err, errConstraints):
		return exitConstraints
	}
	return exitIO
}

// printDiagnostics writes every skip diagnostic of a lenient build to
// stderr as stable, sorted, position-prefixed lines — one
// "source:line:col: severity: message" per line, machine-parseable.
func printDiagnostics(reports []mediator.SourceReport) {
	var lines []string
	for _, sr := range reports {
		for _, d := range sr.Report.Diags {
			lines = append(lines, d.String())
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(os.Stderr, l)
	}
}

// traceOf returns the options' tracer, tolerating nil options (tests
// call the build helpers with nil).
func traceOf(opts *core.Options) *obs.Tracer {
	if opts == nil {
		return nil
	}
	return opts.Trace
}

// writeTrace emits the recorded spans as JSON Lines followed by one
// final line with the metric snapshot, to path ("-" = stderr).
func writeTrace(path string, tr *obs.Tracer, reg *obs.Registry) error {
	w := os.Stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteJSON(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "{\"metrics\":%s}\n", reg.String())
	return err
}

func buildExample(name string, size int, out string, opts *core.Options) error {
	var spec *core.Spec
	switch name {
	case "homepage":
		if size == 0 {
			size = 25
		}
		spec = sites.Homepage(size)
	case "cnn":
		if size == 0 {
			size = 300
		}
		spec = sites.CNN(size)
	case "orgsite":
		if size == 0 {
			size = 400
		}
		spec = sites.OrgSite(size, size/20+1, size/10+1, size/8+1)
	case "bilingual":
		if size == 0 {
			size = 20
		}
		spec = sites.Bilingual(size)
	default:
		return fmt.Errorf("unknown example %q (homepage, cnn, orgsite, bilingual)", name)
	}
	res, err := core.BuildWith(spec, opts)
	if res != nil {
		printDiagnostics(res.SourceReports)
	}
	if err != nil {
		return err
	}
	names := make([]string, 0, len(res.Versions))
	for name := range res.Versions {
		names = append(names, name)
	}
	sort.Strings(names)
	checksPass := true
	for _, name := range names {
		vr := res.Versions[name]
		dir := filepath.Join(out, name)
		for i, c := range vr.Checks {
			fmt.Printf("version %s: constraint %d: %s — %s\n", name, i+1, c.Verdict, c.Reason)
		}
		if !vr.ChecksPass {
			// A violated constraint vetoes publication: the previously
			// published version directory stays untouched.
			checksPass = false
			continue
		}
		ws := traceOf(opts).Start("write", "version", name, "dir", dir)
		err := vr.Output.Publish(fsx.OS, dir, nil)
		ws.End()
		if err != nil {
			return err
		}
		fmt.Printf("version %s: %s → %s\n", name, vr.Stats, dir)
	}
	if !checksPass {
		return errConstraints
	}
	return nil
}

// assembleSources turns the explicit-mode file flags into mediator
// sources, each paired with the file it reads so watch mode knows what
// to poll.
func assembleSources(dataFiles, bibFiles, csvSpecs, jsonFiles []string) ([]fileSource, error) {
	var sources []fileSource
	for _, f := range dataFiles {
		f := f
		name := "ddl:" + f
		sources = append(sources, fileSource{path: f, src: mediator.Source{Name: name,
			Load: func() (*graph.Graph, error) {
				b, err := os.ReadFile(f)
				if err != nil {
					return nil, err
				}
				doc, err := ddl.Parse(string(b))
				if err != nil {
					return nil, err
				}
				return doc.Graph, nil
			},
			LoadLenient: func() (*graph.Graph, *diag.Report, error) {
				b, err := os.ReadFile(f)
				if err != nil {
					return nil, nil, err
				}
				doc, rep := ddl.ParseLenient(string(b), name)
				return doc.Graph, rep, nil
			}}})
	}
	for _, f := range bibFiles {
		f := f
		name := "bib:" + f
		sources = append(sources, fileSource{path: f, src: mediator.Source{Name: name,
			Load: func() (*graph.Graph, error) {
				b, err := os.ReadFile(f)
				if err != nil {
					return nil, err
				}
				return bibtex.Load(string(b), bibtex.DefaultOptions())
			},
			LoadLenient: func() (*graph.Graph, *diag.Report, error) {
				b, err := os.ReadFile(f)
				if err != nil {
					return nil, nil, err
				}
				g, rep := bibtex.LoadLenient(string(b), name, bibtex.DefaultOptions())
				return g, rep, nil
			}}})
	}
	for _, spec := range csvSpecs {
		parts := strings.SplitN(spec, ":", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("-csv wants Table:keyColumn:file, got %q", spec)
		}
		table, key, f := parts[0], parts[1], parts[2]
		name := "csv:" + f
		copts := csvrel.Options{Table: table, KeyColumn: key}
		sources = append(sources, fileSource{path: f, src: mediator.Source{Name: name,
			Load: func() (*graph.Graph, error) {
				b, err := os.ReadFile(f)
				if err != nil {
					return nil, err
				}
				return csvrel.Load(string(b), copts)
			},
			LoadLenient: func() (*graph.Graph, *diag.Report, error) {
				b, err := os.ReadFile(f)
				if err != nil {
					return nil, nil, err
				}
				return csvrel.LoadLenient(string(b), name, copts)
			}}})
	}
	for _, spec := range jsonFiles {
		coll, f, ok := strings.Cut(spec, ":")
		if !ok {
			return nil, fmt.Errorf("-json wants Collection:file, got %q", spec)
		}
		name := "json:" + f
		docName := strings.TrimSuffix(filepath.Base(f), filepath.Ext(f))
		jopts := jsonwrap.Options{Collection: coll}
		sources = append(sources, fileSource{path: f, src: mediator.Source{Name: name,
			Load: func() (*graph.Graph, error) {
				b, err := os.ReadFile(f)
				if err != nil {
					return nil, err
				}
				return jsonwrap.Load(docName, b, jopts)
			},
			LoadLenient: func() (*graph.Graph, *diag.Report, error) {
				b, err := os.ReadFile(f)
				if err != nil {
					return nil, nil, err
				}
				g, rep := jsonwrap.LoadLenient(docName, b, name, jopts)
				return g, rep, nil
			}}})
	}
	return sources, nil
}

// makeVersion reads the query and template files of explicit mode into
// one core.Version named "main".
func makeVersion(queryFile string, templates, collTpl, objTpl, roots, constraintsList []string) (*core.Version, error) {
	if queryFile == "" {
		return nil, fmt.Errorf("provide -query FILE (or -example NAME)")
	}
	qb, err := os.ReadFile(queryFile)
	if err != nil {
		return nil, err
	}
	tmpl := map[string]string{}
	for _, spec := range templates {
		name, file, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("-template wants Name=file, got %q", spec)
		}
		b, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		tmpl[name] = string(b)
	}
	return &core.Version{
		Name:          "main",
		Queries:       []string{string(qb)},
		Templates:     tmpl,
		PerCollection: splitPairs(collTpl),
		PerObject:     splitPairs(objTpl),
		Roots:         roots,
		Constraints:   constraintsList,
	}, nil
}

func buildExplicit(dataFiles, bibFiles, csvSpecs, jsonFiles []string, queryFile string,
	templates, collTpl, objTpl, roots, constraintsList []string, out string, opts *core.Options) error {
	files, err := assembleSources(dataFiles, bibFiles, csvSpecs, jsonFiles)
	if err != nil {
		return err
	}
	version, err := makeVersion(queryFile, templates, collTpl, objTpl, roots, constraintsList)
	if err != nil {
		return err
	}
	sources := make([]mediator.Source, len(files))
	for i, f := range files {
		sources[i] = f.src
	}
	res, err := core.BuildWith(&core.Spec{Name: "cli", Sources: sources, Versions: []core.Version{*version}}, opts)
	if res != nil {
		printDiagnostics(res.SourceReports)
	}
	if err != nil {
		return err
	}
	vr := res.Versions["main"]
	for i, c := range vr.Checks {
		fmt.Printf("constraint %d: %s — %s\n", i+1, c.Verdict, c.Reason)
	}
	if !vr.ChecksPass {
		// Constraint violations veto publication: the previously
		// published site stays in place.
		return errConstraints
	}
	ws := traceOf(opts).Start("write", "version", "main", "dir", out)
	if err := vr.Output.Publish(fsx.OS, out, nil); err != nil {
		ws.End()
		return err
	}
	ws.End()
	fmt.Printf("%s → %s\n", vr.Stats, out)
	return nil
}

// watchExplicit runs an explicit-mode build in watch mode: build, then
// poll and patch until killed.
func watchExplicit(dataFiles, bibFiles, csvSpecs, jsonFiles []string, queryFile string,
	templates, collTpl, objTpl, roots, constraintsList []string, out string,
	interval time.Duration, opts *core.Options) error {
	files, err := assembleSources(dataFiles, bibFiles, csvSpecs, jsonFiles)
	if err != nil {
		return err
	}
	version, err := makeVersion(queryFile, templates, collTpl, objTpl, roots, constraintsList)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("-watch needs at least one file source (-data, -bibtex, -csv, or -json)")
	}
	return runWatch(files, version, out, interval, opts)
}

func splitPairs(list []string) map[string]string {
	m := map[string]string{}
	for _, spec := range list {
		if k, v, ok := strings.Cut(spec, "="); ok {
			m[k] = v
		}
	}
	return m
}
