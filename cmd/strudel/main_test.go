package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strudel/internal/core"
	"strudel/internal/diag"
)

func TestBuildExampleSites(t *testing.T) {
	for _, name := range []string{"homepage", "cnn", "bilingual"} {
		out := filepath.Join(t.TempDir(), name)
		if err := buildExample(name, 8, out, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		entries, err := os.ReadDir(out)
		if err != nil || len(entries) == 0 {
			t.Errorf("%s: no version directories written", name)
		}
	}
}

func TestBuildExampleOrgsiteSmall(t *testing.T) {
	out := t.TempDir()
	if err := buildExample("orgsite", 10, out, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(out, "internal", "index.html"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Research Lab") {
		t.Error("orgsite index wrong")
	}
}

func TestBuildExampleUnknown(t *testing.T) {
	if err := buildExample("nope", 0, t.TempDir(), nil); err == nil {
		t.Error("unknown example should fail")
	}
}

func TestBuildExplicit(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	ddl := write("d.ddl", `
collection Pubs;
node p1 in Pubs { title "Strudel"; }
`)
	csv := write("people.csv", "id,name\nmff,Mary\n")
	query := write("site.struql", `
create Root()
link Root() -> "title" -> "Home"
where Pubs(x)
link Root() -> "pub" -> PubPage(x)
{ where x -> "title" -> tt link PubPage(x) -> "title" -> tt }
where People(p)
link Root() -> "person" -> PersonPage(p)
{ where p -> "name" -> n link PersonPage(p) -> "name" -> n }
`)
	tmpl := write("root.tmpl", `<h1><SFMT title></h1><SFMT pub UL TEXT=title><SFMT person UL TEXT=name>`)
	out := filepath.Join(dir, "site")
	err := buildExplicit(
		[]string{ddl}, nil, []string{"People:id:" + csv}, nil, query,
		[]string{"Root=" + tmpl}, nil, []string{"Root()=Root"},
		[]string{"Root()"}, []string{"connected from Root"}, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	index, err := os.ReadFile(filepath.Join(out, "index.html"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(index), "Strudel") || !strings.Contains(string(index), "Mary") {
		t.Errorf("index:\n%s", index)
	}
}

func TestBuildExplicitErrors(t *testing.T) {
	if err := buildExplicit(nil, nil, nil, nil, "", nil, nil, nil, nil, nil, t.TempDir(), nil); err == nil {
		t.Error("missing query should fail")
	}
	if err := buildExplicit(nil, nil, []string{"bad"}, nil, "x", nil, nil, nil, nil, nil, t.TempDir(), nil); err == nil {
		t.Error("bad csv spec should fail")
	}
	if err := buildExplicit(nil, nil, nil, []string{"noseparator"}, "x", nil, nil, nil, nil, nil, t.TempDir(), nil); err == nil {
		t.Error("bad json spec should fail")
	}
}

func TestBuildExplicitLenientSkipsBadRows(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Row 3 is ragged; lenient mode skips it within the budget.
	csv := write("people.csv", "id,name\nmff,Mary\nbroken\nds,Dan\n")
	query := write("site.struql", `
create Root()
where People(p)
link Root() -> "person" -> PersonPage(p)
{ where p -> "name" -> n link PersonPage(p) -> "name" -> n }
`)
	out := filepath.Join(dir, "site")
	opts := &core.Options{Lenient: true, Budget: diag.Unlimited}
	err := buildExplicit(nil, nil, []string{"People:id:" + csv}, nil, query,
		nil, nil, nil, []string{"Root()"}, nil, out, opts)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(out)
	if err != nil || len(entries) == 0 {
		t.Fatal("no site published")
	}
	// Zero budget turns the same input into a budget failure, and the
	// previously published site survives.
	err = buildExplicit(nil, nil, []string{"People:id:" + csv}, nil, query,
		nil, nil, nil, []string{"Root()"}, nil, out, &core.Options{Lenient: true})
	var be *diag.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *diag.BudgetError", err)
	}
	if exitCode(err) != exitBudget {
		t.Errorf("exit code = %d, want %d", exitCode(err), exitBudget)
	}
	after, err := os.ReadDir(out)
	if err != nil || len(after) != len(entries) {
		t.Error("failed lenient build disturbed the published site")
	}
}

func TestBuildExplicitConstraintVetoKeepsOldSite(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	csv := write("people.csv", "id,name\nmff,Mary\n")
	query := write("site.struql", `
create Root()
where People(p)
link Root() -> "person" -> PersonPage(p)
`)
	out := filepath.Join(dir, "site")
	ok := buildExplicit(nil, nil, []string{"People:id:" + csv}, nil, query,
		nil, nil, nil, []string{"Root()"}, nil, out, nil)
	if ok != nil {
		t.Fatal(ok)
	}
	before, _ := os.ReadFile(filepath.Join(out, "index.html"))

	err := buildExplicit(nil, nil, []string{"People:id:" + csv}, nil, query,
		nil, nil, nil, []string{"Root()"}, []string{`every PersonPage has "name"`}, out, nil)
	if !errors.Is(err, errConstraints) {
		t.Fatalf("err = %v, want errConstraints", err)
	}
	if exitCode(err) != exitConstraints {
		t.Errorf("exit code = %d, want %d", exitCode(err), exitConstraints)
	}
	after, rerr := os.ReadFile(filepath.Join(out, "index.html"))
	if rerr != nil || string(after) != string(before) {
		t.Error("constraint veto did not leave the published site untouched")
	}
}

func TestExitCodeMapping(t *testing.T) {
	if got := exitCode(errors.New("disk on fire")); got != exitIO {
		t.Errorf("generic error → %d, want %d", got, exitIO)
	}
	wrapped := fmt.Errorf("core: x: %w", &diag.BudgetError{Source: "s"})
	if got := exitCode(wrapped); got != exitBudget {
		t.Errorf("budget error → %d, want %d", got, exitBudget)
	}
	if got := exitCode(fmt.Errorf("wrap: %w", errConstraints)); got != exitConstraints {
		t.Errorf("constraint error → %d, want %d", got, exitConstraints)
	}
}
