package main

import (
	"fmt"
	"os"
	"time"

	"strudel/internal/constraints"
	"strudel/internal/core"
	"strudel/internal/fsx"
	"strudel/internal/ivm"
	"strudel/internal/mediator"
	"strudel/internal/obs"
	"strudel/internal/repo"
)

// fileSource pairs a mediator source with the file it reads, so watch
// mode knows what to poll.
type fileSource struct {
	src  mediator.Source
	path string
}

// watchStamp is the polled metadata of one input file. Watch mode only
// needs edit detection coarse enough for human-driven source files; the
// serving reloader adds content hashing for the sub-second case.
type watchStamp struct {
	mtime time.Time
	size  int64
	ok    bool
}

func statWatch(path string) watchStamp {
	fi, err := os.Stat(path)
	if err != nil {
		return watchStamp{}
	}
	return watchStamp{mtime: fi.ModTime(), size: fi.Size(), ok: true}
}

// watcher drives the watch-mode loop: poll the input files, refresh
// changed sources through the mediator, push the merged delta through
// the incremental site, re-check integrity constraints, and patch only
// the dirtied pages into the published tree. Every failure is fail-soft:
// the published directory keeps the last good generation and the next
// tick retries from current file state.
type watcher struct {
	med     *mediator.Mediator
	files   []fileSource
	version *core.Version
	checks  []constraints.Constraint
	site    *ivm.Site
	out     string
	metrics *obs.IVMMetrics
	stamps  map[string]watchStamp
	logf    func(format string, args ...any)
}

// newWatcher builds the site once from current file state, publishes it
// whole, and records the file stamps the polling loop diffs against.
// A constraint violation on the initial build is fatal, exactly like a
// batch build: there is no last-good tree to fall back to yet.
func newWatcher(files []fileSource, version *core.Version, out string,
	opts *core.Options, logf func(format string, args ...any)) (*watcher, error) {
	w := &watcher{files: files, version: version, out: out,
		metrics: &obs.IVMMetrics{}, stamps: map[string]watchStamp{}, logf: logf}
	if w.logf == nil {
		w.logf = func(string, ...any) {}
	}
	for _, cs := range version.Constraints {
		c, err := constraints.Parse(cs)
		if err != nil {
			return nil, err
		}
		w.checks = append(w.checks, c)
	}
	srcs := make([]mediator.Source, len(files))
	for i, f := range files {
		srcs[i] = f.src
	}
	med, err := mediator.New(srcs...)
	if err != nil {
		return nil, err
	}
	w.med = med
	data, err := med.Warehouse()
	if err != nil {
		return nil, err
	}
	site, err := ivm.NewSite(version, data, opts, w.metrics)
	if err != nil {
		return nil, err
	}
	w.site = site
	if !w.checksPass() {
		return nil, errConstraints
	}
	if err := site.Publish(fsx.OS, out, nil); err != nil {
		return nil, err
	}
	for _, f := range files {
		w.stamps[f.path] = statWatch(f.path)
	}
	return w, nil
}

// checksPass runs every integrity constraint against the current site
// graph, logging verdicts; any violation vetoes publication.
func (w *watcher) checksPass() bool {
	g := w.site.SiteGraph()
	if g == nil {
		return true
	}
	pass := true
	for i, c := range w.checks {
		r := c.CheckSite(g)
		if r.Verdict == constraints.Violated {
			pass = false
			w.logf("constraint %d: %s — %s", i+1, r.Verdict, r.Reason)
		}
	}
	return pass
}

// tick is one poll round. It returns whether anything was republished.
//
// A failed source reload keeps the old stamp, so a torn mid-write read
// or transient parse error is retried next tick instead of being
// frozen until the next edit. Per-source deltas are sound to feed the
// engine even when sources overlap: the row-level apply re-checks every
// candidate against the merged data graph, so an edge one source
// removed but another still contributes cannot kill a live row.
func (w *watcher) tick() (published bool, err error) {
	var delta *mediator.Delta
	for _, f := range w.files {
		st := statWatch(f.path)
		old := w.stamps[f.path]
		if st.ok == old.ok && st.size == old.size && st.mtime.Equal(old.mtime) {
			continue
		}
		d, rerr := w.med.Refresh(f.src.Name)
		if rerr != nil {
			w.logf("watch: %s: %v (will retry)", f.src.Name, rerr)
			continue
		}
		w.stamps[f.path] = st
		if delta == nil {
			delta = d
		} else {
			delta.Merge(d)
		}
	}
	if delta == nil {
		return false, nil
	}
	delta.Compact()
	data := repo.NewIndexed(w.med.DataGraph())
	if aerr := w.site.Apply(data, delta); aerr != nil {
		// Even the degraded full rebuild failed; the site still holds its
		// last good generation and the accumulated dirty set.
		w.logf("watch: apply: %v (keeping last good site)", aerr)
		return false, aerr
	}
	if !w.checksPass() {
		w.logf("watch: constraints violated; publication vetoed, last good site kept")
		return false, errConstraints
	}
	if perr := w.site.Publish(fsx.OS, w.out, nil); perr != nil {
		w.logf("watch: publish: %v (dirty pages retained for next attempt)", perr)
		return false, perr
	}
	return true, nil
}

// run polls until stop closes. Tick errors are already logged and
// fail-soft, so the loop only reports them, never exits on them.
func (w *watcher) run(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if pub, _ := w.tick(); pub {
				snap := w.metrics.Snapshot()
				w.logf("watch: republished (applied=%v rebuilds=%v dirty=%v)",
					snap["deltas_applied"], snap["full_rebuilds"], snap["dirty_pages"])
			}
		}
	}
}

// runWatch is the -watch entry point: explicit inputs only, since the
// bundled examples synthesize their data in memory.
func runWatch(files []fileSource, version *core.Version, out string,
	interval time.Duration, opts *core.Options) error {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "strudel: "+format+"\n", args...)
	}
	w, err := newWatcher(files, version, out, opts, logf)
	if err != nil {
		return err
	}
	fmt.Printf("watching %d files, rebuilt site → %s (interval %s)\n", len(files), out, interval)
	w.run(interval, nil)
	return nil
}
