package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildServerAndServe(t *testing.T) {
	dir := t.TempDir()
	ddl := write(t, dir, "d.ddl", `
collection Pubs;
node p1 in Pubs { title "Strudel"; }
node p2 in Pubs { title "Boat"; }
`)
	query := write(t, dir, "q.struql", `
create Root()
link Root() -> "title" -> "Library"
where Pubs(x)
create Page(x)
link Root() -> "pub" -> Page(x)
{ where x -> "title" -> tt link Page(x) -> "title" -> tt }
`)
	rootTmpl := write(t, dir, "Root.tmpl", `<h1><SFMT title></h1><SFMT pub UL TEXT=title>`)
	pageTmpl := write(t, dir, "Page.tmpl", `<b><SFMT title></b>`)

	srv, err := buildServer([]string{ddl}, nil, []string{"Root=" + rootTmpl, "Page=" + pageTmpl}, query, true)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "<h1>Library</h1>") {
		t.Errorf("root body:\n%s", body)
	}
	if !strings.Contains(string(body), "Strudel") {
		t.Errorf("root should link pubs:\n%s", body)
	}
}

func TestBuildServerErrors(t *testing.T) {
	dir := t.TempDir()
	query := write(t, dir, "q.struql", `create Root()`)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"no query", func() error {
			_, err := buildServer(nil, nil, nil, "", false)
			return err
		}},
		{"bad template spec", func() error {
			_, err := buildServer(nil, nil, []string{"noequals"}, query, false)
			return err
		}},
		{"missing data file", func() error {
			_, err := buildServer([]string{"/nonexistent.ddl"}, nil, nil, query, false)
			return err
		}},
		{"no entry point", func() error {
			q2 := write(t, dir, "q2.struql", `where Pubs(x) create P(x)`)
			_, err := buildServer(nil, nil, nil, q2, false)
			return err
		}},
	}
	for _, c := range cases {
		if c.fn() == nil {
			t.Errorf("%s should fail", c.name)
		}
	}
}
