package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const testDDL = `
collection Pubs;
node p1 in Pubs { title "Strudel"; }
node p2 in Pubs { title "Boat"; }
`

const testQuery = `
create Root()
link Root() -> "title" -> "Library"
where Pubs(x)
create Page(x)
link Root() -> "pub" -> Page(x)
{ where x -> "title" -> tt link Page(x) -> "title" -> tt }
`

func TestBuildServerAndServe(t *testing.T) {
	dir := t.TempDir()
	ddl := write(t, dir, "d.ddl", testDDL)
	query := write(t, dir, "q.struql", testQuery)
	rootTmpl := write(t, dir, "Root.tmpl", `<h1><SFMT title></h1><SFMT pub UL TEXT=title>`)
	pageTmpl := write(t, dir, "Page.tmpl", `<b><SFMT title></b>`)

	srv, rl, err := buildServer([]string{ddl}, nil, []string{"Root=" + rootTmpl, "Page=" + pageTmpl}, query, true)
	if err != nil {
		t.Fatal(err)
	}
	if rl == nil {
		t.Fatal("a server with data files should have a reloader")
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "<h1>Library</h1>") {
		t.Errorf("root body:\n%s", body)
	}
	if !strings.Contains(string(body), "Strudel") {
		t.Errorf("root should link pubs:\n%s", body)
	}

	// /healthz answers ok with reload counters.
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Status != "ok" {
		t.Errorf("healthz status = %q", st.Status)
	}
}

func TestBuildServerHotReload(t *testing.T) {
	dir := t.TempDir()
	ddl := write(t, dir, "d.ddl", testDDL)
	query := write(t, dir, "q.struql", testQuery)
	srv, rl, err := buildServer([]string{ddl}, nil, nil, query, false)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	if body := get(t, hs.URL+"/"); !strings.Contains(body, "Library") {
		t.Fatalf("initial body:\n%s", body)
	}
	// Change the data file and force a poll: the new publication appears.
	write(t, dir, "d.ddl", testDDL+`
node p3 in Pubs { title "Reloaded"; }
`)
	rl.Tick(time.Now())
	found := false
	for i := 0; i < 50 && !found; i++ {
		found = strings.Contains(get(t, hs.URL+"/"), "Page(p3)")
		if !found {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !found {
		t.Error("reloaded publication not served")
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestBuildServerErrors(t *testing.T) {
	dir := t.TempDir()
	query := write(t, dir, "q.struql", `create Root()`)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"no query", func() error {
			_, _, err := buildServer(nil, nil, nil, "", false)
			return err
		}},
		{"bad template spec", func() error {
			_, _, err := buildServer(nil, nil, []string{"noequals"}, query, false)
			return err
		}},
		{"missing data file", func() error {
			_, _, err := buildServer([]string{"/nonexistent.ddl"}, nil, nil, query, false)
			return err
		}},
		{"no entry point", func() error {
			q2 := write(t, dir, "q2.struql", `where Pubs(x) create P(x)`)
			_, _, err := buildServer(nil, nil, nil, q2, false)
			return err
		}},
	}
	for _, c := range cases {
		if c.fn() == nil {
			t.Errorf("%s should fail", c.name)
		}
	}
}

func TestRunListenFailureExitCode(t *testing.T) {
	// Occupy a port, then ask run to bind it: exit code 2, not 1.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	dir := t.TempDir()
	cfg := config{
		dataFiles: []string{write(t, dir, "d.ddl", testDDL)},
		queryFile: write(t, dir, "q.struql", testQuery),
		addr:      ln.Addr().String(),
	}
	if code := run(cfg); code != exitListen {
		t.Errorf("exit code = %d, want %d", code, exitListen)
	}
}

func TestRunConfigErrorExitCode(t *testing.T) {
	if code := run(config{addr: "127.0.0.1:0"}); code != exitError {
		t.Errorf("exit code = %d, want %d", code, exitError)
	}
}

func TestRunGracefulShutdownOnSIGTERM(t *testing.T) {
	// Reserve a port for run to use.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	dir := t.TempDir()
	cfg := config{
		dataFiles:       []string{write(t, dir, "d.ddl", testDDL)},
		queryFile:       write(t, dir, "q.struql", testQuery),
		addr:            addr,
		requestTimeout:  5 * time.Second,
		maxInflight:     16,
		reloadInterval:  50 * time.Millisecond,
		shutdownTimeout: 5 * time.Second,
	}
	done := make(chan int, 1)
	go func() { done <- run(cfg) }()

	// Wait until it serves, then drain it with SIGTERM (caught by
	// signal.NotifyContext inside run; the test process survives).
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never came up")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != exitOK {
			t.Errorf("exit code = %d, want %d", code, exitOK)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("graceful shutdown never completed")
	}
}
