// Command strudel-serve serves a Strudel site dynamically: instead of
// materializing the whole site graph up front, each request evaluates at
// "click time" the incremental queries that compute the requested page
// (§2.5, §7), with result caching and optional lookahead.
//
// Usage:
//
//	strudel-serve -data x.ddl [-bibtex y.bib] -query site.struql
//	              [-template Fn=file.tmpl] [-addr :8080] [-lookahead]
//	              [-request-timeout 10s] [-max-inflight 256]
//	              [-reload-interval 2s] [-shutdown-timeout 10s]
//	              [-shards 1] [-replicas 1] [-stale-for 2s]
//	              [-hedge] [-hedge-min-delay 2ms] [-hedge-max-delay 500ms]
//	              [-hedge-ratio 0.1] [-retry-ratio 0.2] [-attempt-timeout 0]
//	              [-probe-interval 250ms] [-breaker-failures 5]
//	              [-breaker-open-for 500ms] [-query-api]
//	              [-query-max-rows 100000] [-query-timeout 5s]
//
// Templates are keyed by Skolem function name (Fn=...).
//
// The server is production-hardened: per-request deadlines, load shedding
// past -max-inflight, panic recovery, /healthz, hot reload of changed
// -data/-bibtex files with graceful degradation (a broken file keeps the
// last-good site serving and retries with backoff), and SIGINT/SIGTERM
// graceful drain. The serving tier is gray-failure-tolerant: per-replica
// circuit breakers, tail-latency hedging under a token budget, active
// health probing of ejected replicas, and a live health grid under
// /debug/vars (strudel.fleet_health). Exit codes: 0 clean (including graceful shutdown),
// 1 configuration or serving error, 2 listener failure (e.g. address in
// use).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"strudel/internal/ddl"
	"strudel/internal/dynamic"
	"strudel/internal/fleet"
	"strudel/internal/graph"
	"strudel/internal/obs"
	"strudel/internal/queryapi"
	"strudel/internal/schema"
	"strudel/internal/struql"
	"strudel/internal/template"
	"strudel/internal/wrapper/bibtex"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// Exit codes, distinguished so supervisors can tell a port conflict from
// a crashed site definition.
const (
	exitOK     = 0
	exitError  = 1
	exitListen = 2
)

type config struct {
	dataFiles, bibFiles, templates []string
	queryFile, addr                string
	debugAddr                      string
	lookahead                      bool
	requestTimeout                 time.Duration
	maxInflight                    int
	reloadInterval                 time.Duration
	shutdownTimeout                time.Duration
	shards, replicas               int
	staleFor                       time.Duration
	hedge                          bool
	hedgeMinDelay, hedgeMaxDelay   time.Duration
	hedgeRatio, retryRatio         float64
	attemptTimeout                 time.Duration
	probeInterval                  time.Duration
	breakerFailures                int
	breakerOpenFor                 time.Duration
	queryAPI                       bool
	queryMaxRows                   int
	queryMaxNFAStates              int
	queryTimeout                   time.Duration
	queryPageSize                  int
	queryMaxPageSize               int
	queryMaxInflight               int
}

func main() {
	var cfg config
	var dataFiles, bibFiles, templates stringList
	flag.Var(&dataFiles, "data", "data-definition-language file (repeatable)")
	flag.Var(&bibFiles, "bibtex", "BibTeX file (repeatable)")
	flag.Var(&templates, "template", "template as SkolemFn=file (repeatable)")
	flag.StringVar(&cfg.queryFile, "query", "", "StruQL site-definition query file")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "listen address for /debug/vars and /debug/pprof/* (empty disables; keep it off the public interface)")
	flag.BoolVar(&cfg.lookahead, "lookahead", false, "precompute linked pages after each request")
	flag.DurationVar(&cfg.requestTimeout, "request-timeout", 10*time.Second, "per-request evaluation deadline (0 disables)")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 256, "max concurrent page requests before shedding with 503 (0 = unlimited)")
	flag.DurationVar(&cfg.reloadInterval, "reload-interval", 2*time.Second, "source-file poll period for hot reload (0 disables)")
	flag.DurationVar(&cfg.shutdownTimeout, "shutdown-timeout", 10*time.Second, "bound on graceful drain after SIGINT/SIGTERM")
	flag.IntVar(&cfg.shards, "shards", 1, "number of shared-nothing page-space shards")
	flag.IntVar(&cfg.replicas, "replicas", 1, "replicas per shard (failover capacity)")
	flag.DurationVar(&cfg.staleFor, "stale-for", 2*time.Second, "stale-while-revalidate window after a hot reload (0 disables stale serving)")
	flag.BoolVar(&cfg.hedge, "hedge", true, "hedge tail-latency requests onto a sibling replica")
	flag.DurationVar(&cfg.hedgeMinDelay, "hedge-min-delay", 2*time.Millisecond, "floor for the quantile-tracked hedge delay")
	flag.DurationVar(&cfg.hedgeMaxDelay, "hedge-max-delay", 500*time.Millisecond, "ceiling for the hedge delay")
	flag.Float64Var(&cfg.hedgeRatio, "hedge-ratio", 0.1, "hedge budget as a fraction of offered load")
	flag.Float64Var(&cfg.retryRatio, "retry-ratio", 0.2, "failover-retry budget as a fraction of offered load")
	flag.DurationVar(&cfg.attemptTimeout, "attempt-timeout", 0, "per-replica attempt deadline inside a fetch (0 = request deadline only)")
	flag.DurationVar(&cfg.probeInterval, "probe-interval", 250*time.Millisecond, "active replica health-check period (0 disables probing)")
	flag.IntVar(&cfg.breakerFailures, "breaker-failures", 5, "consecutive replica failures that trip its circuit breaker")
	flag.DurationVar(&cfg.breakerOpenFor, "breaker-open-for", 500*time.Millisecond, "breaker cool-down before half-open trials")
	flag.BoolVar(&cfg.queryAPI, "query-api", true, "serve the StruQL query API (/query, /query/explain, /schema/*)")
	flag.IntVar(&cfg.queryMaxRows, "query-max-rows", 100000, "row guard ceiling per query (requests may only tighten it)")
	flag.IntVar(&cfg.queryMaxNFAStates, "query-max-nfa-states", 1<<20, "path-automaton state guard per query start node")
	flag.DurationVar(&cfg.queryTimeout, "query-timeout", 5*time.Second, "evaluation deadline ceiling per query")
	flag.IntVar(&cfg.queryPageSize, "query-page-size", 100, "default rows per /query page")
	flag.IntVar(&cfg.queryMaxPageSize, "query-max-page-size", 10000, "ceiling on per-request page_size")
	flag.IntVar(&cfg.queryMaxInflight, "query-max-inflight", 64, "max concurrent query requests before shedding with 503 (negative = unlimited)")
	flag.Parse()
	cfg.dataFiles, cfg.bibFiles, cfg.templates = dataFiles, bibFiles, templates

	os.Exit(run(cfg))
}

func run(cfg config) int {
	srv, rl, err := buildServer(cfg.dataFiles, cfg.bibFiles, cfg.templates, cfg.queryFile, cfg.lookahead)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel-serve:", err)
		return exitError
	}

	// Metrics are always collected (they are cheap atomics); the debug
	// listener just decides whether anything can read them.
	metrics := &obs.ServeMetrics{}
	ivmMetrics := &obs.IVMMetrics{}
	fleetMetrics := &obs.FleetMetrics{}
	queryMetrics := &obs.QueryMetrics{}
	if rl != nil {
		rl.Obs = metrics
		rl.IVM = ivmMetrics
	}

	// The serving tier proper: the page space is partitioned over
	// -shards shared-nothing shards of -replicas replicas each (1×1 is a
	// perfectly good fleet), and every request enters through the edge —
	// consistent-hash routing, generation-scoped conditional GETs,
	// stale-while-revalidate across hot reloads.
	fl, err := fleet.New(fleet.Config{
		Schema:    srv.Ev.Schema,
		Templates: srv.Templates,
		PerFn:     srv.PerFn,
		Default:   srv.Default,
		Shards:    cfg.shards,
		Replicas:  cfg.replicas,
		Lookahead: cfg.lookahead,
		Obs:       fleetMetrics,
		ServeObs:  metrics,
		Gray: fleet.GrayConfig{
			Breaker: fleet.BreakerConfig{
				Failures: cfg.breakerFailures,
				OpenFor:  cfg.breakerOpenFor,
			},
			HedgeMinDelay:  cfg.hedgeMinDelay,
			HedgeMaxDelay:  cfg.hedgeMaxDelay,
			HedgeRatio:     cfg.hedgeRatio,
			DisableHedge:   !cfg.hedge,
			RetryRatio:     cfg.retryRatio,
			AttemptTimeout: cfg.attemptTimeout,
			ProbeInterval:  cfg.probeInterval,
		},
	}, srv.Ev.Source())
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel-serve:", err)
		return exitError
	}
	edge := fleet.NewEdge(fl)
	edge.StaleFor = cfg.staleFor
	edge.RequestTimeout = cfg.requestTimeout
	edge.MaxInflight = cfg.maxInflight
	edge.Obs = fleetMetrics
	edge.Health = srv.Health
	if rl != nil {
		// Hot reloads now swap every replica of every shard in lockstep.
		rl.AttachSwapper(fl, srv.Health)
	}

	// Bind before installing signal handling so "address in use" and its
	// kin are reported as what they are, with their own exit code,
	// instead of masquerading as a serving failure.
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "strudel-serve: cannot listen on %s: %v\n", cfg.addr, err)
		return exitListen
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Active health probing keeps ejected replicas on a path back to
	// service even when no traffic is reaching them.
	if cfg.probeInterval > 0 {
		fl.StartHealthChecks(ctx)
	}

	// The debug listener is separate from the production listener on
	// purpose: /debug/vars and /debug/pprof/* expose internals (and
	// pprof can be made to burn CPU), so they bind to an operator-chosen
	// address — typically localhost — and the production mux keeps
	// 404ing /debug/*.
	if cfg.debugAddr != "" {
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "strudel-serve: cannot listen on debug address %s: %v\n", cfg.debugAddr, err)
			return exitListen
		}
		dhs := &http.Server{
			Handler:           debugMux(metrics, ivmMetrics, fleetMetrics, queryMetrics, fl.HealthSnapshot),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			<-ctx.Done()
			dhs.Close()
		}()
		go dhs.Serve(dln)
		fmt.Printf("debug endpoints (/debug/vars, /debug/pprof/) on %s\n", cfg.debugAddr)
	}

	if cfg.reloadInterval > 0 && rl != nil {
		rl.Interval = cfg.reloadInterval
		go rl.Run(ctx)
	}

	// The production mux: the query API owns /query, /query/explain, and
	// /schema/*; the page edge serves everything else. Both route through
	// the same fleet, so queries and pages share generation snapshots,
	// replica health, and hot reloads.
	handler := edge.Handler()
	if cfg.queryAPI {
		qsvc := &queryapi.Service{
			Backend: fl,
			Limits: queryapi.Limits{
				MaxRows:         cfg.queryMaxRows,
				MaxNFAStates:    cfg.queryMaxNFAStates,
				Timeout:         cfg.queryTimeout,
				DefaultPageSize: cfg.queryPageSize,
				MaxPageSize:     cfg.queryMaxPageSize,
			},
			Obs:         queryMetrics,
			MaxInflight: cfg.queryMaxInflight,
		}
		qh := qsvc.Handler()
		root := http.NewServeMux()
		root.Handle("/query", qh)
		root.Handle("/query/", qh)
		root.Handle("/schema/", qh)
		root.Handle("/", handler)
		handler = root
	}

	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      cfg.requestTimeout + 15*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if cfg.requestTimeout <= 0 {
		hs.WriteTimeout = 0
	}

	// Drain on signal: stop accepting, let in-flight requests finish,
	// bounded by -shutdown-timeout.
	shutdownDone := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
		defer cancel()
		shutdownDone <- hs.Shutdown(shCtx)
	}()

	roots := srv.Ev.EntryPoints()
	fmt.Printf("serving %d entry point(s) on %s via %d shard(s) x %d replica(s) (start at /, health at /healthz)\n",
		len(roots), cfg.addr, fl.Shards(), fl.ReplicasPerShard())
	err = hs.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "strudel-serve: serve:", err)
		return exitError
	}
	if err := <-shutdownDone; err != nil {
		fmt.Fprintln(os.Stderr, "strudel-serve: shutdown incomplete (in-flight requests past deadline):", err)
		return exitError
	}
	fmt.Println("strudel-serve: graceful shutdown complete")
	return exitOK
}

// debugMux builds the debug listener's handler: the server's metric
// registry under /debug/vars (published into expvar as "strudel") and
// the pprof handlers wired explicitly, so nothing depends on
// http.DefaultServeMux — the production listener never serves these.
func debugMux(metrics *obs.ServeMetrics, ivmMetrics *obs.IVMMetrics, fleetMetrics *obs.FleetMetrics, queryMetrics *obs.QueryMetrics, health func() map[string]any) http.Handler {
	reg := obs.NewRegistry()
	reg.Register("serve", metrics)
	reg.Register("ivm", ivmMetrics)
	reg.Register("fleet", fleetMetrics)
	reg.Register("queryapi", queryMetrics)
	reg.Register("fleet_health", obs.SnapshotterFunc(health))
	expvar.Publish("strudel", reg)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// buildServer assembles the dynamic server and its hot reloader from the
// CLI inputs. Every -data and -bibtex file becomes a watched source: the
// reloader polls its mtime and re-wraps it on change.
func buildServer(dataFiles, bibFiles, templates []string, queryFile string, lookahead bool) (*dynamic.Server, *dynamic.Reloader, error) {
	if queryFile == "" {
		return nil, nil, fmt.Errorf("provide -query FILE")
	}
	qb, err := os.ReadFile(queryFile)
	if err != nil {
		return nil, nil, err
	}
	q, err := struql.Parse(string(qb))
	if err != nil {
		return nil, nil, err
	}

	var sources []dynamic.WatchedSource
	for _, f := range dataFiles {
		f := f
		sources = append(sources, dynamic.WatchedSource{
			Name:  "ddl:" + f,
			Paths: []string{f},
			Load: func() (*graph.Graph, error) {
				b, err := os.ReadFile(f)
				if err != nil {
					return nil, err
				}
				doc, err := ddl.Parse(string(b))
				if err != nil {
					return nil, fmt.Errorf("%s: %w", f, err)
				}
				return doc.Graph, nil
			},
		})
	}
	for _, f := range bibFiles {
		f := f
		sources = append(sources, dynamic.WatchedSource{
			Name:  "bibtex:" + f,
			Paths: []string{f},
			Load: func() (*graph.Graph, error) {
				b, err := os.ReadFile(f)
				if err != nil {
					return nil, err
				}
				g, err := bibtex.Load(string(b), bibtex.DefaultOptions())
				if err != nil {
					return nil, fmt.Errorf("%s: %w", f, err)
				}
				return g, nil
			},
		})
	}
	// A site can be pure construction (no data files); it serves fine but
	// has nothing to watch, so the reloader is nil and hot reload is off.
	var rl *dynamic.Reloader
	var data struql.Source
	if len(sources) > 0 {
		rl, err = dynamic.NewReloader(sources...)
		if err != nil {
			return nil, nil, err
		}
		data, err = rl.Warehouse()
		if err != nil {
			return nil, nil, err
		}
	} else {
		data = struql.NewGraphSource(graph.New())
	}

	ev := dynamic.NewEvaluator(schema.Build(q), data)
	ev.Lookahead = lookahead
	ts := template.NewSet()
	srv := dynamic.NewServer(ev, ts)
	if rl != nil {
		rl.Attach(ev, srv.Health)
	}
	for _, spec := range templates {
		fn, file, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, nil, fmt.Errorf("-template wants SkolemFn=file, got %q", spec)
		}
		b, err := os.ReadFile(file)
		if err != nil {
			return nil, nil, err
		}
		if err := ts.Add(fn, string(b)); err != nil {
			return nil, nil, err
		}
		srv.PerFn[fn] = fn
	}
	if len(ev.EntryPoints()) == 0 {
		return nil, nil, fmt.Errorf("the query has no unconditional zero-argument Skolem creation to serve as an entry point")
	}
	return srv, rl, nil
}
