// Command strudel-serve serves a Strudel site dynamically: instead of
// materializing the whole site graph up front, each request evaluates at
// "click time" the incremental queries that compute the requested page
// (§2.5, §7), with result caching and optional lookahead.
//
// Usage:
//
//	strudel-serve -data x.ddl [-bibtex y.bib] -query site.struql
//	              [-template Fn=file.tmpl] [-addr :8080] [-lookahead]
//
// Templates are keyed by Skolem function name (Fn=...).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"strudel/internal/ddl"
	"strudel/internal/dynamic"
	"strudel/internal/graph"
	"strudel/internal/repo"
	"strudel/internal/schema"
	"strudel/internal/struql"
	"strudel/internal/template"
	"strudel/internal/wrapper/bibtex"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var dataFiles, bibFiles, templates stringList
	flag.Var(&dataFiles, "data", "data-definition-language file (repeatable)")
	flag.Var(&bibFiles, "bibtex", "BibTeX file (repeatable)")
	flag.Var(&templates, "template", "template as SkolemFn=file (repeatable)")
	queryFile := flag.String("query", "", "StruQL site-definition query file")
	addr := flag.String("addr", ":8080", "listen address")
	lookahead := flag.Bool("lookahead", false, "precompute linked pages after each request")
	flag.Parse()

	if err := run(dataFiles, bibFiles, templates, *queryFile, *addr, *lookahead); err != nil {
		fmt.Fprintln(os.Stderr, "strudel-serve:", err)
		os.Exit(1)
	}
}

func run(dataFiles, bibFiles, templates []string, queryFile, addr string, lookahead bool) error {
	srv, err := buildServer(dataFiles, bibFiles, templates, queryFile, lookahead)
	if err != nil {
		return err
	}
	roots := srv.Ev.EntryPoints()
	fmt.Printf("serving %d entry point(s) on %s (start at /)\n", len(roots), addr)
	return http.ListenAndServe(addr, srv.Handler())
}

// buildServer assembles the dynamic server from the CLI inputs.
func buildServer(dataFiles, bibFiles, templates []string, queryFile string, lookahead bool) (*dynamic.Server, error) {
	if queryFile == "" {
		return nil, fmt.Errorf("provide -query FILE")
	}
	qb, err := os.ReadFile(queryFile)
	if err != nil {
		return nil, err
	}
	q, err := struql.Parse(string(qb))
	if err != nil {
		return nil, err
	}
	data := graph.New()
	for _, f := range dataFiles {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		doc, err := ddl.Parse(string(b))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		data.Merge(doc.Graph)
	}
	for _, f := range bibFiles {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		g, err := bibtex.Load(string(b), bibtex.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		data.Merge(g)
	}
	ev := dynamic.NewEvaluator(schema.Build(q), repo.NewIndexed(data))
	ev.Lookahead = lookahead
	ts := template.NewSet()
	srv := dynamic.NewServer(ev, ts)
	for _, spec := range templates {
		fn, file, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("-template wants SkolemFn=file, got %q", spec)
		}
		b, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		if err := ts.Add(fn, string(b)); err != nil {
			return nil, err
		}
		srv.PerFn[fn] = fn
	}
	if len(ev.EntryPoints()) == 0 {
		return nil, fmt.Errorf("the query has no unconditional zero-argument Skolem creation to serve as an entry point")
	}
	return srv, nil
}
