// Command siteschema derives and prints the site schema of a StruQL
// query (§2.5) — the tool the paper describes as "a tool to view a
// query's site schema, which provides a visual map of the site being
// specified". It regenerates Fig. 7 from the Fig. 3 query.
//
// Usage:
//
//	siteschema -query site.struql [-dot] [-ns]
//
// With -dot, Graphviz output is produced; -ns includes edges to the NS
// node, which Fig. 7 omits for clarity.
package main

import (
	"flag"
	"fmt"
	"os"

	"strudel/internal/schema"
	"strudel/internal/struql"
)

func main() {
	queryFile := flag.String("query", "", "StruQL query file")
	dot := flag.Bool("dot", false, "emit Graphviz dot")
	withNS := flag.Bool("ns", false, "include edges to the NS node")
	flag.Parse()

	out, err := emit(*queryFile, *dot, *withNS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "siteschema:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// emit derives the schema of the query in the file and renders it.
func emit(queryFile string, dot, withNS bool) (string, error) {
	if queryFile == "" {
		return "", fmt.Errorf("provide -query FILE")
	}
	b, err := os.ReadFile(queryFile)
	if err != nil {
		return "", err
	}
	q, err := struql.Parse(string(b))
	if err != nil {
		return "", err
	}
	s := schema.Build(q)
	if dot {
		return s.Dot("siteschema", !withNS), nil
	}
	return s.String(), nil
}
