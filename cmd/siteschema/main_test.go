package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const schemaQuery = `
create RootPage()
where Publications(x), x -> "year" -> y
create YearPage(y)
link YearPage(y) -> "Paper" -> PaperPage(x),
     RootPage() -> "Year" -> YearPage(y)
`

func TestEmitText(t *testing.T) {
	f := filepath.Join(t.TempDir(), "q.struql")
	if err := os.WriteFile(f, []byte(schemaQuery), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := emit(f, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "YearPage -> PaperPage") {
		t.Errorf("schema:\n%s", out)
	}
	if !strings.Contains(out, "legend:") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestEmitDot(t *testing.T) {
	f := filepath.Join(t.TempDir(), "q.struql")
	if err := os.WriteFile(f, []byte(schemaQuery), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := emit(f, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "digraph") {
		t.Errorf("dot output:\n%s", out)
	}
}

func TestEmitErrors(t *testing.T) {
	if _, err := emit("", false, false); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := emit("/nonexistent.struql", false, false); err == nil {
		t.Error("nonexistent file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.struql")
	os.WriteFile(bad, []byte("where"), 0o644)
	if _, err := emit(bad, false, false); err == nil {
		t.Error("bad query should fail")
	}
}
