// Command strudel-load drives an open-loop HTTP load test against a
// running strudel-serve edge: it crawls the page space from /, then
// fires arrivals at a fixed rate with zipfian page popularity and
// reports throughput and latency percentiles as JSON (the shape
// BENCH_serve.json aggregates).
//
// Usage:
//
//	strudel-load -url http://127.0.0.1:8080 [-rate 500] [-duration 10s]
//	             [-warmup 2s] [-zipf-s 1.1] [-zipf-v 1] [-pages 4096]
//	             [-inflight 1024] [-seed 1] [-out report.json]
//	             [-allow-status 503] [-max-p99 0]
//	             [-query-file queries.txt] [-query-page-size 100]
//
// Open-loop means arrivals do not wait for responses: a server that
// falls behind faces a growing backlog, as it would under real traffic.
// -allow-status lists response codes tolerated during fault drills
// (counted separately, not as errors); -max-p99 turns the run into a
// tail-latency assertion. -query-file switches the driver from page
// GETs to query-API POSTs: each line is one StruQL where clause
// (blank lines and # comments skipped), fired at /query with the same
// zipfian popularity pages get — the basis of the queries/sec vs
// pages/sec comparison in BENCH_query.json. Exit codes: 0 on a clean
// run, 1 on configuration or transport failure, 3 if the run completed
// but recorded request errors or blew the -max-p99 bound.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"strudel/internal/fleet"
)

const (
	exitOK     = 0
	exitError  = 1
	exitErrors = 3
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "base URL of the edge under test")
		rate     = flag.Float64("rate", 500, "arrival rate in requests/second")
		duration = flag.Duration("duration", 10*time.Second, "measured window")
		warmup   = flag.Duration("warmup", 2*time.Second, "warmup window before measurement (results discarded)")
		zipfS    = flag.Float64("zipf-s", 1.1, "zipf skew (s > 1; larger = steeper popularity head)")
		zipfV    = flag.Float64("zipf-v", 1, "zipf v parameter (≥ 1)")
		pages    = flag.Int("pages", fleet.DefaultMaxPages, "max pages to discover by crawling")
		inflight = flag.Int("inflight", fleet.DefaultMaxInflight, "max outstanding requests; arrivals past it are dropped")
		seed     = flag.Int64("seed", 1, "popularity seed (reproducible page mix)")
		out      = flag.String("out", "", "write the JSON report to this file (default stdout)")
		allow    = flag.String("allow-status", "", "comma-separated status codes tolerated (counted as allowed, not errors)")
		maxP99   = flag.Duration("max-p99", 0, "fail (exit 3) if the measured p99 exceeds this bound (0 disables)")
		qfile    = flag.String("query-file", "", "file of StruQL where clauses (one per line); switches the driver to /query POSTs")
		qpage    = flag.Int("query-page-size", 0, "page_size sent with each /query request (0 = server default)")
	)
	flag.Parse()

	allowed, err := parseStatusList(*allow)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel-load:", err)
		os.Exit(exitError)
	}
	queries, err := readQueryFile(*qfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel-load:", err)
		os.Exit(exitError)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	lg := &fleet.LoadGen{
		BaseURL:       *url,
		Rate:          *rate,
		Duration:      *duration,
		Warmup:        *warmup,
		ZipfS:         *zipfS,
		ZipfV:         *zipfV,
		MaxPages:      *pages,
		MaxInflight:   *inflight,
		Seed:          *seed,
		AllowStatus:   allowed,
		Queries:       queries,
		QueryPageSize: *qpage,
	}
	rep, err := lg.Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel-load:", err)
		os.Exit(exitError)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "strudel-load:", err)
			os.Exit(exitError)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "strudel-load:", err)
		os.Exit(exitError)
	}
	fmt.Fprintf(os.Stderr, "strudel-load: %d pages, %d requests (%d dropped, %d allowed), %.0f rps, p50=%s p99=%s p99.9=%s\n",
		rep.Pages, rep.Requests, rep.Dropped, rep.Allowed, rep.Throughput,
		time.Duration(rep.P50Nanos), time.Duration(rep.P99Nanos), time.Duration(rep.P999Nanos))
	code := exitOK
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "strudel-load: %d requests failed\n", rep.Errors)
		code = exitErrors
	}
	if *maxP99 > 0 && rep.P99Nanos > int64(*maxP99) {
		fmt.Fprintf(os.Stderr, "strudel-load: p99 %s exceeds -max-p99 %s\n",
			time.Duration(rep.P99Nanos), *maxP99)
		code = exitErrors
	}
	os.Exit(code)
}

// readQueryFile loads -query-file: one StruQL where clause per line,
// blank lines and # comments skipped. Empty path means page mode.
func readQueryFile(path string) ([]string, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("-query-file: %w", err)
	}
	var queries []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		queries = append(queries, line)
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("-query-file: %s holds no queries", path)
	}
	return queries, nil
}

// parseStatusList turns "503,429" into status codes for -allow-status.
func parseStatusList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var codes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		code, err := strconv.Atoi(part)
		if err != nil || code < 100 || code > 599 {
			return nil, fmt.Errorf("-allow-status: %q is not an HTTP status code", part)
		}
		codes = append(codes, code)
	}
	return codes, nil
}
