package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testDDL = `
collection Pubs;
node p1 in Pubs { title "Strudel"; year 1998; }
node p2 in Pubs { title "Boat"; year 1997; }
`

func TestRunInlineQuery(t *testing.T) {
	ddlFile := writeFile(t, "d.ddl", testDDL)
	err := run(&config{dataFiles: []string{ddlFile},
		expr: `where Pubs(x), x -> "year" -> y, y > 1997 create N(x)`})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunQueryFile(t *testing.T) {
	ddlFile := writeFile(t, "d.ddl", testDDL)
	qFile := writeFile(t, "q.struql", `where Pubs(x) create N(x)`)
	if err := run(&config{dataFiles: []string{ddlFile}, queryFile: qFile, plan: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSchemaMode(t *testing.T) {
	err := run(&config{expr: `where Pubs(x) create N(x) link N(x) -> "t" -> x`, showSchema: true})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunGuideMode(t *testing.T) {
	ddlFile := writeFile(t, "d.ddl", testDDL)
	if err := run(&config{dataFiles: []string{ddlFile}, guide: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBibtex(t *testing.T) {
	bibFile := writeFile(t, "r.bib", `@article{k, title={T}, year=1998}`)
	err := run(&config{bibFiles: []string{bibFile},
		expr: `where Publications(x) create N(x)`})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunExplainMode(t *testing.T) {
	ddlFile := writeFile(t, "d.ddl", testDDL)
	query := `where Pubs(x), x -> "year" -> y, y > 1997 create N(x)`
	for _, cfg := range []*config{
		{dataFiles: []string{ddlFile}, expr: query, explain: true},
		{dataFiles: []string{ddlFile}, expr: query, explain: true, noStats: true},
		{dataFiles: []string{ddlFile}, expr: query, explain: true, noReorder: true},
	} {
		if err := run(cfg); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunPlannerFlags(t *testing.T) {
	ddlFile := writeFile(t, "d.ddl", testDDL)
	err := run(&config{dataFiles: []string{ddlFile}, noStats: true, noReorder: true,
		expr: `where Pubs(x), x -> "year" -> y, y > 1997 create N(x)`})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(&config{}); err == nil {
		t.Error("missing query should fail")
	}
	if err := run(&config{queryFile: "/nonexistent.struql"}); err == nil {
		t.Error("missing query file should fail")
	}
	if err := run(&config{dataFiles: []string{"/nonexistent.ddl"}, expr: `create R()`}); err == nil {
		t.Error("missing data file should fail")
	}
	bad := writeFile(t, "bad.ddl", "not valid ddl !!!")
	if err := run(&config{dataFiles: []string{bad}, expr: `create R()`}); err == nil {
		t.Error("bad ddl should fail")
	}
	if err := run(&config{expr: `where`}); err == nil {
		t.Error("bad query should fail")
	}
	if err := run(&config{expr: `where`, explain: true}); err == nil {
		t.Error("bad query should fail in explain mode")
	}
}
