package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testDDL = `
collection Pubs;
node p1 in Pubs { title "Strudel"; year 1998; }
node p2 in Pubs { title "Boat"; year 1997; }
`

func TestRunInlineQuery(t *testing.T) {
	ddlFile := writeFile(t, "d.ddl", testDDL)
	err := run([]string{ddlFile}, nil, "", `where Pubs(x), x -> "year" -> y, y > 1997 create N(x)`, false, false, false, 0)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunQueryFile(t *testing.T) {
	ddlFile := writeFile(t, "d.ddl", testDDL)
	qFile := writeFile(t, "q.struql", `where Pubs(x) create N(x)`)
	if err := run([]string{ddlFile}, nil, qFile, "", true, false, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunSchemaMode(t *testing.T) {
	if err := run(nil, nil, "", `where Pubs(x) create N(x) link N(x) -> "t" -> x`, false, true, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunGuideMode(t *testing.T) {
	ddlFile := writeFile(t, "d.ddl", testDDL)
	if err := run([]string{ddlFile}, nil, "", "", false, false, true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunBibtex(t *testing.T) {
	bibFile := writeFile(t, "r.bib", `@article{k, title={T}, year=1998}`)
	if err := run(nil, []string{bibFile}, "", `where Publications(x) create N(x)`, false, false, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, nil, "", "", false, false, false, 0); err == nil {
		t.Error("missing query should fail")
	}
	if err := run(nil, nil, "/nonexistent.struql", "", false, false, false, 0); err == nil {
		t.Error("missing query file should fail")
	}
	if err := run([]string{"/nonexistent.ddl"}, nil, "", `create R()`, false, false, false, 0); err == nil {
		t.Error("missing data file should fail")
	}
	bad := writeFile(t, "bad.ddl", "not valid ddl !!!")
	if err := run([]string{bad}, nil, "", `create R()`, false, false, false, 0); err == nil {
		t.Error("bad ddl should fail")
	}
	if err := run(nil, nil, "", `where`, false, false, false, 0); err == nil {
		t.Error("bad query should fail")
	}
}
