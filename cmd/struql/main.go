// Command struql evaluates a StruQL query against a data graph and
// prints the resulting graph.
//
// Usage:
//
//	struql -data site.ddl [-bibtex refs.bib] [-query site.struql | -e 'where ...'] [-plan] [-schema]
//
// Data files may be given repeatedly; .ddl files parse as Strudel's
// data-definition language and -bibtex files through the BibTeX wrapper.
// With -schema the query's site schema is printed instead of evaluating.
package main

import (
	"flag"
	"fmt"
	"os"

	"strudel/internal/ddl"
	"strudel/internal/graph"
	"strudel/internal/repo"
	"strudel/internal/schema"
	"strudel/internal/struql"
	"strudel/internal/wrapper/bibtex"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var dataFiles, bibFiles stringList
	flag.Var(&dataFiles, "data", "data-definition-language file (repeatable)")
	flag.Var(&bibFiles, "bibtex", "BibTeX file loaded through the bibliography wrapper (repeatable)")
	queryFile := flag.String("query", "", "StruQL query file")
	expr := flag.String("e", "", "inline StruQL query text")
	plan := flag.Bool("plan", false, "print the evaluation plan")
	showSchema := flag.Bool("schema", false, "print the query's site schema instead of evaluating")
	guide := flag.Bool("guide", false, "print the data graph's dataguide (structure summary) and exit")
	jobs := flag.Int("j", 0, "evaluation parallelism: 0 = one worker per CPU, 1 = sequential (results are identical at any setting)")
	flag.Parse()

	if err := run(dataFiles, bibFiles, *queryFile, *expr, *plan, *showSchema, *guide, *jobs); err != nil {
		fmt.Fprintln(os.Stderr, "struql:", err)
		os.Exit(1)
	}
}

func run(dataFiles, bibFiles []string, queryFile, expr string, plan, showSchema, guide bool, jobs int) error {
	if guide {
		data, err := loadData(dataFiles, bibFiles)
		if err != nil {
			return err
		}
		fmt.Print(repo.BuildDataGuide(repo.NewIndexed(data), nil).String())
		return nil
	}
	var src string
	switch {
	case expr != "":
		src = expr
	case queryFile != "":
		b, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		src = string(b)
	default:
		return fmt.Errorf("provide -query FILE or -e QUERY")
	}
	q, err := struql.Parse(src)
	if err != nil {
		return err
	}
	if showSchema {
		fmt.Print(schema.Build(q).String())
		return nil
	}
	data, err := loadData(dataFiles, bibFiles)
	if err != nil {
		return err
	}
	r, err := struql.Eval(q, repo.NewIndexed(data), &struql.Options{Parallelism: jobs})
	if err != nil {
		return err
	}
	if plan {
		for i, p := range r.Plan {
			fmt.Printf("-- plan %d: %s\n", i+1, p)
		}
		fmt.Printf("-- rows: %d\n", r.Rows)
	}
	fmt.Print(r.Graph.Dump())
	return nil
}

func loadData(dataFiles, bibFiles []string) (*graph.Graph, error) {
	data := graph.New()
	for _, f := range dataFiles {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		doc, err := ddl.Parse(string(b))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		data.Merge(doc.Graph)
	}
	for _, f := range bibFiles {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		g, err := bibtex.Load(string(b), bibtex.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		data.Merge(g)
	}
	return data, nil
}
