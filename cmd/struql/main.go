// Command struql evaluates a StruQL query against a data graph and
// prints the resulting graph.
//
// Usage:
//
//	struql -data site.ddl [-bibtex refs.bib] [-query site.struql | -e 'where ...'] [-plan] [-explain] [-schema]
//
// Data files may be given repeatedly; .ddl files parse as Strudel's
// data-definition language and -bibtex files through the BibTeX wrapper.
// With -schema the query's site schema is printed instead of evaluating;
// with -explain the planner's evaluation plan is printed instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"strudel/internal/ddl"
	"strudel/internal/graph"
	"strudel/internal/repo"
	"strudel/internal/schema"
	"strudel/internal/struql"
	"strudel/internal/wrapper/bibtex"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

type config struct {
	dataFiles  []string
	bibFiles   []string
	queryFile  string
	expr       string
	plan       bool
	explain    bool
	showSchema bool
	guide      bool
	jobs       int
	noStats    bool
	noReorder  bool
	frozen     bool
}

func main() {
	var cfg config
	var dataFiles, bibFiles stringList
	flag.Var(&dataFiles, "data", "data-definition-language file (repeatable)")
	flag.Var(&bibFiles, "bibtex", "BibTeX file loaded through the bibliography wrapper (repeatable)")
	flag.StringVar(&cfg.queryFile, "query", "", "StruQL query file")
	flag.StringVar(&cfg.expr, "e", "", "inline StruQL query text")
	flag.BoolVar(&cfg.plan, "plan", false, "print the evaluation plan after the result")
	flag.BoolVar(&cfg.explain, "explain", false, "print the planner's evaluation plan (per block: condition order, access paths, cost estimates) without evaluating")
	flag.BoolVar(&cfg.showSchema, "schema", false, "print the query's site schema instead of evaluating")
	flag.BoolVar(&cfg.guide, "guide", false, "print the data graph's dataguide (structure summary) and exit")
	flag.IntVar(&cfg.jobs, "j", 0, "evaluation parallelism: 0 = one worker per CPU, 1 = sequential (results are identical at any setting)")
	flag.BoolVar(&cfg.noStats, "no-stats", false, "plan with fixed heuristics instead of collected selectivity statistics (results are identical)")
	flag.BoolVar(&cfg.noReorder, "no-reorder", false, "evaluate conditions in first-ready textual order instead of cost order (results are identical)")
	flag.BoolVar(&cfg.frozen, "frozen", true, "evaluate against the compact frozen graph snapshot; -frozen=false uses generic access paths (results are identical)")
	flag.Parse()
	cfg.dataFiles, cfg.bibFiles = dataFiles, bibFiles

	if err := run(&cfg); err != nil {
		fmt.Fprintln(os.Stderr, "struql:", err)
		os.Exit(1)
	}
}

func run(cfg *config) error {
	if cfg.guide {
		data, err := loadData(cfg.dataFiles, cfg.bibFiles)
		if err != nil {
			return err
		}
		fmt.Print(repo.BuildDataGuide(repo.NewIndexed(data), nil).String())
		return nil
	}
	var src string
	switch {
	case cfg.expr != "":
		src = cfg.expr
	case cfg.queryFile != "":
		b, err := os.ReadFile(cfg.queryFile)
		if err != nil {
			return err
		}
		src = string(b)
	default:
		return fmt.Errorf("provide -query FILE or -e QUERY")
	}
	q, err := struql.Parse(src)
	if err != nil {
		return err
	}
	if cfg.showSchema {
		fmt.Print(schema.Build(q).String())
		return nil
	}
	data, err := loadData(cfg.dataFiles, cfg.bibFiles)
	if err != nil {
		return err
	}
	opts := &struql.Options{
		Parallelism: cfg.jobs,
		NoStats:     cfg.noStats,
		NoReorder:   cfg.noReorder,
		NoFrozen:    !cfg.frozen,
	}
	if cfg.explain {
		text, err := struql.Explain(q, repo.NewIndexed(data), opts)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}
	r, err := struql.Eval(q, repo.NewIndexed(data), opts)
	if err != nil {
		return err
	}
	if cfg.plan {
		for i, p := range r.Plan {
			fmt.Printf("-- plan %d: %s\n", i+1, p)
		}
		fmt.Printf("-- rows: %d\n", r.Rows)
	}
	fmt.Print(r.Graph.Dump())
	return nil
}

func loadData(dataFiles, bibFiles []string) (*graph.Graph, error) {
	data := graph.New()
	for _, f := range dataFiles {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		doc, err := ddl.Parse(string(b))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		data.Merge(doc.Graph)
	}
	for _, f := range bibFiles {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		g, err := bibtex.Load(string(b), bibtex.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		data.Merge(g)
	}
	return data, nil
}
