// Package strudel_test is the experiment harness: one benchmark per
// table, figure, or quantitative claim in the paper's evaluation (see
// DESIGN.md's per-experiment index and EXPERIMENTS.md for paper-vs-
// measured results). Run with:
//
//	go test -bench=. -benchmem .
package strudel_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"strudel/internal/baseline"
	"strudel/internal/constraints"
	"strudel/internal/core"
	"strudel/internal/dynamic"
	"strudel/internal/graph"
	"strudel/internal/ivm"
	"strudel/internal/mediator"
	"strudel/internal/repo"
	"strudel/internal/schema"
	"strudel/internal/sites"
	"strudel/internal/struql"
	"strudel/internal/synth"
	"strudel/internal/wrapper/bibtex"
)

// --- shared fixtures ---

func bibData(b *testing.B, n int) *graph.Graph {
	b.Helper()
	g, err := bibtex.Load(synth.Bibliography(n, "bench"), bibtex.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func mustEval(b *testing.B, q *struql.Query, src struql.Source) *graph.Graph {
	b.Helper()
	r, err := struql.Eval(q, src, nil)
	if err != nil {
		b.Fatal(err)
	}
	return r.Graph
}

// --- Fig. 8: site-creation cost vs data size × structural complexity ---
//
// The paper's Fig. 8 positions tools by data size and structural
// complexity (measured in link clauses / CGI scripts). These benches
// sweep both axes for the declarative pipeline and the hand-written
// procedural generator; EXPERIMENTS.md reads the crossover off the
// results.

func BenchmarkFig8_Strudel(b *testing.B) {
	for _, size := range []int{100, 400, 1600} {
		for _, dims := range []int{1, 2, 4, 8} {
			q := struql.MustParse(baseline.GroupedQuery("Publications", dims))
			data := repo.NewIndexed(bibData(b, size))
			b.Run(fmt.Sprintf("items=%d/links=%d", size, q.LinkClauseCount()), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					mustEval(b, q, data)
				}
			})
		}
	}
}

func BenchmarkFig8_Baseline(b *testing.B) {
	for _, size := range []int{100, 400, 1600} {
		for _, dims := range []int{1, 2, 4, 8} {
			data := bibData(b, size)
			b.Run(fmt.Sprintf("items=%d/dims=%d", size, dims), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					baseline.ProceduralGrouped(data, "Publications", dims)
				}
			})
		}
	}
}

// --- E1: the AT&T-Research-style organization site (§5.1) ---

func BenchmarkE1_OrgSiteBuild(b *testing.B) {
	for _, people := range []int{100, 400} {
		spec := sites.OrgSite(people, people/20+1, people/10+1, people/8+1)
		b.Run(fmt.Sprintf("people=%d", people), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E2: the mff personal homepage (§5.1) ---

func BenchmarkE2_HomepageBuild(b *testing.B) {
	spec := sites.Homepage(25)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: the CNN demo, general and sports-only (§5.1) ---

func BenchmarkE3_CNNBuild(b *testing.B) {
	spec := sites.CNN(300)
	spec.Versions = spec.Versions[:1] // general only
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_SportsOnly(b *testing.B) {
	spec := sites.CNN(300)
	spec.Versions = spec.Versions[1:2] // sports only
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: composed queries (the suciu example, §5.1) ---

func BenchmarkE4_Composition(b *testing.B) {
	data := repo.NewIndexed(bibData(b, 200))
	q1 := struql.MustParse(`
where Publications(x) create Page(x) link Page(x) -> "self" -> x collect Pages(Page(x))
{ where x -> l -> v link Page(x) -> l -> v }`)
	q2 := struql.MustParse(`
where Pages(p), p -> "year" -> y create Year(y) link Year(y) -> "Pg" -> p collect Years(Year(y))`)
	q3 := struql.MustParse(`
create Nav()
where Pages(p) link Nav() -> "target" -> p, Nav() -> "home" -> Nav()`)
	queries := []*struql.Query{q1, q2, q3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := struql.EvalSeq(queries, data, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: bilingual site from one query (§5.1) ---

func BenchmarkE5_Bilingual(b *testing.B) {
	spec := sites.Bilingual(40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: full indexing of schema and data (§2.1) ---
//
// Indexed vs naive-scan query evaluation, plus the cost of maintaining
// the indexes, which the paper calls "obviously expensive".

var e6Queries = []string{
	`where Publications(x), x -> "year" -> y, y > 1994 create N(x, y)`,
	`where Publications(x), x -> "category" -> "databases" create C(x)`,
	`where a -> "author" -> w, b -> "author" -> w, a != b create Pair(a, b)`,
	`where Publications(x), not(x -> "month" -> m) create NoMonth(x)`,
}

func BenchmarkE6_IndexedQueries(b *testing.B) {
	// The 25600-item tier (~270k edges) exercises the frozen-snapshot
	// fast path at a scale where per-edge allocation dominates.
	for _, size := range []int{100, 400, 1600, 6400, 25600} {
		data := repo.NewIndexed(bibData(b, size))
		b.Run(fmt.Sprintf("edges=%d", data.NumEdges()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, qs := range e6Queries {
					mustEval(b, struql.MustParse(qs), data)
				}
			}
		})
	}
}

func BenchmarkE6_NaiveQueries(b *testing.B) {
	// The naive evaluator's full scans are quadratic on the self-join
	// query; 1600 items is already ~100x slower than the indexed run.
	for _, size := range []int{100, 400, 1600} {
		g := bibData(b, size)
		data := struql.NewGraphSource(g)
		b.Run(fmt.Sprintf("edges=%d", g.NumEdges()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, qs := range e6Queries {
					r, err := struql.Eval(struql.MustParse(qs), data, &struql.Options{NoReorder: true})
					if err != nil {
						b.Fatal(err)
					}
					_ = r
				}
			}
		})
	}
}

func BenchmarkE6_IndexMaintenance(b *testing.B) {
	for _, size := range []int{100, 400, 1600, 6400, 25600} {
		g := bibData(b, size)
		b.Run(fmt.Sprintf("edges=%d", g.NumEdges()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				repo.NewIndexed(g.Copy())
			}
		})
	}
}

// --- E7: static materialization vs dynamic click-time evaluation (§2.5) ---

func e7Fixture(b *testing.B) (*struql.Query, *repo.Indexed) {
	b.Helper()
	q := struql.MustParse(sites.CNNQuery)
	spec := sites.CNN(300)
	med, err := mediator.New(spec.Sources...)
	if err != nil {
		b.Fatal(err)
	}
	data, err := med.Warehouse()
	if err != nil {
		b.Fatal(err)
	}
	return q, data
}

func BenchmarkE7_StaticMaterialize(b *testing.B) {
	q, data := e7Fixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustEval(b, q, data)
	}
}

// browse follows a deterministic click session from the front page.
func browse(b *testing.B, ev *dynamic.Evaluator, clicks int) {
	b.Helper()
	root := dynamic.PageRef{Fn: "FrontPage"}
	cur := root
	for c := 0; c < clicks; c++ {
		pd, err := ev.Page(cur)
		if err != nil {
			b.Fatal(err)
		}
		if len(pd.Links) == 0 {
			cur = root
			continue
		}
		cur = pd.Links[c%len(pd.Links)]
	}
}

func BenchmarkE7_DynamicCold(b *testing.B) {
	q, data := e7Fixture(b)
	s := schema.Build(q)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := dynamic.NewEvaluator(s, data)
		browse(b, ev, 10)
	}
}

func BenchmarkE7_DynamicCached(b *testing.B) {
	q, data := e7Fixture(b)
	ev := dynamic.NewEvaluator(schema.Build(q), data)
	browse(b, ev, 10) // warm the cache
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		browse(b, ev, 10)
	}
}

func BenchmarkE7_DynamicLookahead(b *testing.B) {
	q, data := e7Fixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := dynamic.NewEvaluator(schema.Build(q), data)
		ev.Lookahead = true
		browse(b, ev, 10)
	}
}

// --- E8: incremental update vs full rebuild (§7) ---

func e8Fixture(b *testing.B) (*struql.Query, *graph.Graph, *graph.Graph, *mediator.Delta) {
	b.Helper()
	q := struql.MustParse(sites.HomepageQuery)
	data, err := sites.HomepageData(200)
	if err != nil {
		b.Fatal(err)
	}
	r, err := struql.Eval(q, struql.NewGraphSource(data), nil)
	if err != nil {
		b.Fatal(err)
	}
	updated := data.Copy()
	updated.AddToCollection("Publications", "brandnew")
	updated.AddEdge("brandnew", "title", graph.NewString("A Brand New Result"))
	updated.AddEdge("brandnew", "year", graph.NewInt(1999))
	updated.AddEdge("brandnew", "category", graph.NewString("databases"))
	delta := &mediator.Delta{
		AddedEdges: []graph.Edge{
			{From: "brandnew", Label: "title", To: graph.NewString("A Brand New Result")},
			{From: "brandnew", Label: "year", To: graph.NewInt(1999)},
			{From: "brandnew", Label: "category", To: graph.NewString("databases")},
		},
		AddedMembers: []mediator.Membership{{Coll: "Publications", OID: "brandnew"}},
	}
	return q, r.Graph, updated, delta
}

func BenchmarkE8_FullRebuild(b *testing.B) {
	q, _, updated, _ := e8Fixture(b)
	src := struql.NewGraphSource(updated)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustEval(b, q, src)
	}
}

func BenchmarkE8_IncrementalCopyMerge(b *testing.B) {
	// The simple additive path: copies the old site and merges the
	// re-evaluated blocks. The copy makes it comparable to a full
	// rebuild when the delta touches the dominant collection.
	q, oldSite, updated, delta := e8Fixture(b)
	src := struql.NewGraphSource(updated)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dynamic.Incremental(q, oldSite, src, delta); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_IncrementalStatePubDelta(b *testing.B) {
	// Partition-based maintenance, worst case: a publication delta
	// touches the block that dominates evaluation cost.
	q, _, updated, delta := e8Fixture(b)
	src := struql.NewGraphSource(updated)
	st, err := dynamic.NewIncrementalState(q, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := st.Apply(src, delta); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_IncrementalStatePatentDelta(b *testing.B) {
	// Best case: a patent delta affects only the small patents block;
	// the 200-publication blocks are skipped entirely.
	q, _, updated, _ := e8Fixture(b)
	updated.AddToCollection("Patents", "newpat")
	updated.AddEdge("newpat", "title", graph.NewString("A new patent"))
	delta := &mediator.Delta{
		AddedEdges:   []graph.Edge{{From: "newpat", Label: "title", To: graph.NewString("A new patent")}},
		AddedMembers: []mediator.Membership{{Coll: "Patents", OID: "newpat"}},
	}
	src := struql.NewGraphSource(updated)
	st, err := dynamic.NewIncrementalState(q, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := st.Apply(src, delta); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_MaintainerLocalizedDelta(b *testing.B) {
	// End-to-end incremental maintenance: data delta → affected query
	// blocks → site-graph diff → dirty-page regeneration. A patent delta
	// leaves the publication pages untouched.
	spec := sites.Homepage(200)
	med, err := mediator.New(spec.Sources...)
	if err != nil {
		b.Fatal(err)
	}
	warehouse, err := med.Warehouse()
	if err != nil {
		b.Fatal(err)
	}
	data := warehouse.Graph()
	m, err := core.NewMaintainer(&spec.Versions[0], struql.NewGraphSource(data))
	if err != nil {
		b.Fatal(err)
	}
	updated := data.Copy()
	updated.AddToCollection("Patents", "benchpat")
	updated.AddEdge("benchpat", "title", graph.NewString("Bench patent"))
	updated.AddEdge("benchpat", "number", graph.NewString("US7777777"))
	delta := mediator.Diff(data, updated)
	src := struql.NewGraphSource(updated)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Apply(src, delta); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: the cost of a second version (§6.1: "building the external
// version was trivial") ---

func BenchmarkE9_FirstVersion(b *testing.B) {
	spec := sites.OrgSite(100, 6, 11, 13)
	med, err := mediator.New(spec.Sources...)
	if err != nil {
		b.Fatal(err)
	}
	data, err := med.Warehouse()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildVersion(&spec.Versions[0], data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9_SecondVersion(b *testing.B) {
	// The second version shares the evaluated site graph; only the
	// rendering differs.
	spec := sites.OrgSite(100, 6, 11, 13)
	med, err := mediator.New(spec.Sources...)
	if err != nil {
		b.Fatal(err)
	}
	data, err := med.Warehouse()
	if err != nil {
		b.Fatal(err)
	}
	first, err := core.BuildVersion(&spec.Versions[0], data)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.RenderVersion(&spec.Versions[1], first.Queries, first.SiteGraph); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E10: separation of query and construction stages (§6.2) ---

func BenchmarkE10_WhereStage(b *testing.B) {
	data := repo.NewIndexed(bibData(b, 1000))
	conds := struql.MustParse(`where Publications(x), x -> "year" -> y, x -> l -> v create N(x)`).Blocks[0].Where
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := struql.EvalWhere(conds, data, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_FullQuery(b *testing.B) {
	data := repo.NewIndexed(bibData(b, 1000))
	q := struql.MustParse(`where Publications(x), x -> "year" -> y, x -> l -> v create N(x) link N(x) -> l -> v, N(x) -> "year" -> y`)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustEval(b, q, data)
	}
}

func BenchmarkE10_SkolemMemoHits(b *testing.B) {
	env := struql.NewSkolemEnv()
	args := []graph.Value{graph.NewString("pub123")}
	env.OID("Page", args)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.OID("Page", args)
	}
}

func BenchmarkE10_SkolemMemoMisses(b *testing.B) {
	env := struql.NewSkolemEnv()
	// Warm the environment so the one-time arena/table initialization is
	// excluded; the loop measures the steady-state per-miss cost.
	env.OID("Warm", []graph.Value{graph.NewInt(-1)})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.OID("Page", []graph.Value{graph.NewInt(int64(i))})
	}
}

// --- E11: regular path expressions — the TextOnly copy query (§2.2) ---

const textOnlyQuery = `
where Root(p), p -> * -> q, isNode(q)
create New(q)
collect TextOnlyRoot(New(p))
{
  where q -> l -> q2, isNode(q2)
  link New(q) -> l -> New(q2)
}
{
  where q -> l -> q2, isAtom(q2), not(isImageFile(q2))
  link New(q) -> l -> q2
}
`

// chainSite builds a deep site: a chain of sections each holding leaves,
// some of which are images the TextOnly query must strip.
func chainSite(depth, fanout int) *graph.Graph {
	g := graph.New()
	g.AddToCollection("Root", "s0")
	for i := 0; i < depth; i++ {
		cur := graph.OID(fmt.Sprintf("s%d", i))
		if i+1 < depth {
			g.AddEdge(cur, "next", graph.NewNode(graph.OID(fmt.Sprintf("s%d", i+1))))
		}
		for j := 0; j < fanout; j++ {
			if j%3 == 0 {
				g.AddEdge(cur, "pic", graph.NewFile(graph.FileImage, fmt.Sprintf("i%d-%d.gif", i, j)))
			} else {
				g.AddEdge(cur, "txt", graph.NewString(fmt.Sprintf("leaf %d-%d", i, j)))
			}
		}
	}
	return g
}

func BenchmarkE11_TextOnly(b *testing.B) {
	q := struql.MustParse(textOnlyQuery)
	for _, depth := range []int{10, 100, 1000} {
		data := repo.NewIndexed(chainSite(depth, 6))
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustEval(b, q, data)
			}
		})
	}
}

func BenchmarkE11_RPEScaling(b *testing.B) {
	for _, pat := range []string{`"next"*`, `("next"|"txt")*`, `~"n.*"+`, `"next"."next"."next"`} {
		pe := struql.MustParsePathExpr(pat)
		data := repo.NewIndexed(chainSite(500, 4))
		b.Run(pat, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				struql.ReachableVia(data, "s0", pe)
			}
		})
	}
}

// --- E12: integrity-constraint verification (§2.5) ---

func e12Fixture(b *testing.B) (*schema.Schema, *repo.Indexed, *graph.Graph, constraints.Constraint) {
	b.Helper()
	q := struql.MustParse(sites.HomepageQuery)
	data, err := sites.HomepageData(200)
	if err != nil {
		b.Fatal(err)
	}
	ix := repo.NewIndexed(data)
	site := mustEval(b, q, ix)
	c, err := constraints.Parse(`every PaperPresentation reachable from CategoryPage via "Paper"`)
	if err != nil {
		b.Fatal(err)
	}
	return schema.Build(q), ix, site, c
}

func BenchmarkE12_StaticVerification(b *testing.B) {
	s, _, _, c := e12Fixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.CheckStatic(s)
	}
}

func BenchmarkE12_DataVerification(b *testing.B) {
	s, data, _, c := e12Fixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.CheckData(s, data)
	}
}

func BenchmarkE12_SiteVerification(b *testing.B) {
	_, _, site, c := e12Fixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.CheckSite(site)
	}
}

// --- E13: parallel build scaling (this reproduction's worker-pool
// pipeline; not in the paper) ---
//
// One version of the CNN site, warehoused once, built end to end —
// StruQL evaluation plus HTML generation — at increasing worker counts.
// The j=1 sub-benchmark is the sequential baseline; each wider run
// reports its speedup over it. Output is byte-identical at every
// setting (TestParallelDeterminism pins that), so this measures pure
// scheduling win. Speedup beyond j=GOMAXPROCS cannot appear: on a
// single-CPU host every setting times roughly the same.

func BenchmarkE13_ParallelScaling(b *testing.B) {
	spec := sites.CNN(300)
	spec.Versions = spec.Versions[:1] // general only
	med, err := mediator.New(spec.Sources...)
	if err != nil {
		b.Fatal(err)
	}
	data, err := med.Warehouse()
	if err != nil {
		b.Fatal(err)
	}
	workers := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workers = append(workers, n)
	}
	var baseline time.Duration
	for _, j := range workers {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			opts := &core.Options{Parallelism: j}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildVersionWith(&spec.Versions[0], data, opts); err != nil {
					b.Fatal(err)
				}
			}
			perOp := b.Elapsed() / time.Duration(b.N)
			if j == 1 {
				baseline = perOp
			} else if baseline > 0 && perOp > 0 {
				b.ReportMetric(float64(baseline)/float64(perOp), "speedup")
			}
		})
	}
}

// --- E14: cost-based planning vs fixed heuristics (this reproduction's addition) ---

// e14Data builds a graph with deliberately skewed selectivity: every
// item carries one unique "id" edge (fan-out 1) and forty "tag" edges
// (fan-out 40), plus a sparse "rare" chain. Uniform-degree heuristics
// cannot tell the two labels apart; collected statistics can.
func e14Data(n int) *repo.Indexed {
	g := graph.New()
	oid := func(i int) graph.OID { return graph.OID(fmt.Sprintf("p%05d", i)) }
	for i := 0; i < n; i++ {
		g.AddToCollection("Items", oid(i))
		g.AddEdge(oid(i), "id", graph.NewString(fmt.Sprintf("x%05d", i)))
		for t := 0; t < 40; t++ {
			g.AddEdge(oid(i), "tag", graph.NewString(fmt.Sprintf("t%02d", (i+t)%64)))
		}
		if i%50 == 0 && i > 0 {
			g.AddEdge(oid(i-50), "rare", graph.NewNode(oid(i)))
		}
	}
	return repo.NewIndexed(g)
}

// e14SelectiveQuery touches the dense label first textually: the
// heuristic planner keeps that order (equal estimated fan-out) and
// expands every row 40-fold before the unique "id" seek prunes; the
// cost-based planner routes the id seek and its filter first.
const e14SelectiveQuery = `where Items(x), x -> "tag" -> t, x -> "id" -> i, i = "x00001"
create Out(x) link Out(x) -> "tag" -> t`

func BenchmarkE14_SelectiveQuery(b *testing.B) {
	data := e14Data(2000)
	q := struql.MustParse(e14SelectiveQuery)
	heur, err := struql.Eval(q, data, &struql.Options{NoStats: true})
	if err != nil {
		b.Fatal(err)
	}
	cost, err := struql.Eval(q, data, nil)
	if err != nil {
		b.Fatal(err)
	}
	if heur.Graph.Dump() != cost.Graph.Dump() {
		b.Fatal("heuristic and cost-based plans produced different graphs")
	}
	for _, cfg := range []struct {
		name string
		opts *struql.Options
	}{
		{"planner=heuristic", &struql.Options{NoStats: true}},
		{"planner=cost", nil},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := struql.Eval(q, data, cfg.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE14_Stats isolates the price of the statistics themselves:
// cold collects per evaluation, warm reuses a pre-collected Stats.
func BenchmarkE14_Stats(b *testing.B) {
	data := e14Data(2000)
	q := struql.MustParse(e14SelectiveQuery)
	warm := struql.CollectStats(data)
	b.Run("stats=cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := struql.Eval(q, data, &struql.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stats=warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := struql.Eval(q, data, &struql.Options{Stats: warm}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE14_RPEDispatch measures index-seeded regular-path
// evaluation: the start variable is unbound, but every accepted path
// begins with the sparse "rare" label, so the planner seeds the start
// set from that label's extent instead of scanning every node (NoStats
// disables seeding — the scan baseline).
func BenchmarkE14_RPEDispatch(b *testing.B) {
	data := e14Data(2000)
	q := struql.MustParse(`where Items(x), y -> "rare"+ -> x create Out(y) link Out(y) -> "to" -> x`)
	seeded, err := struql.Eval(q, data, nil)
	if err != nil {
		b.Fatal(err)
	}
	scanned, err := struql.Eval(q, data, &struql.Options{NoStats: true})
	if err != nil {
		b.Fatal(err)
	}
	if seeded.Graph.Dump() != scanned.Graph.Dump() {
		b.Fatal("seeded and scanning RPE dispatch produced different graphs")
	}
	for _, cfg := range []struct {
		name string
		opts *struql.Options
	}{
		{"rpe=seeded", nil},
		{"rpe=scan", &struql.Options{NoStats: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := struql.Eval(q, data, cfg.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E15: fail-soft incremental rebuilds — delta propagation vs full
// rebuild for a localized edit (the edit-storm steady state) ---

func e15Site(b *testing.B) (*ivm.Site, *core.Version, *graph.Graph, *mediator.Delta) {
	b.Helper()
	spec := sites.Homepage(200)
	med, err := mediator.New(spec.Sources...)
	if err != nil {
		b.Fatal(err)
	}
	warehouse, err := med.Warehouse()
	if err != nil {
		b.Fatal(err)
	}
	data := warehouse.Graph()
	site, err := ivm.NewSite(&spec.Versions[0], struql.NewGraphSource(data), nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	if site.Engine() == nil {
		b.Fatal("homepage version should maintain incrementally")
	}
	updated := data.Copy()
	updated.AddToCollection("Patents", "benchpat")
	updated.AddEdge("benchpat", "title", graph.NewString("Bench patent"))
	updated.AddEdge("benchpat", "number", graph.NewString("US7777777"))
	return site, &spec.Versions[0], updated, mediator.Diff(data, updated)
}

func BenchmarkE15_DeltaApplyLocalized(b *testing.B) {
	// One patent added to a 200-publication site: the delta path
	// re-derives only the patent rows and re-renders only the pages they
	// touch. Re-applying the identical delta is idempotent (rows dedupe,
	// refcounts stay balanced), so every iteration does the same work.
	site, _, updated, delta := e15Site(b)
	src := struql.NewGraphSource(updated)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := site.Apply(src, delta); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE15_FullRebuildLocalized(b *testing.B) {
	// The degraded path for the same edit: evaluate the whole query and
	// re-render every page from scratch.
	_, version, updated, _ := e15Site(b)
	src := struql.NewGraphSource(updated)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildVersionWith(version, src, nil); err != nil {
			b.Fatal(err)
		}
	}
}
